package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"

	"mpsched/internal/dfg"
	"mpsched/internal/pipeline"
)

// handleBatch serves POST /v1/batch: one envelope of N compile jobs, one
// stream of N results. The envelope decodes in the request codec and the
// items stream back in the response codec's item framing (NDJSON for
// JSON, length-prefixed frames for binary), flushed as each job
// finishes — in completion order, tagged with the job's envelope index.
//
// Job isolation is the point of the endpoint's status model: every job
// carries its own HTTP-equivalent status inside its item (400 bad
// request, 413 oversized graph, 429 not admitted, 422 compile error, 200
// with a result), so one bad job never fails its neighbours. Only
// envelope-level faults — an undecodable envelope, too many jobs, a
// draining server — fail the whole request, before any item is written.
//
// Admission is per-job and deterministic: each job try-acquires from
// batchSem (capacity QueueDepth, shared across envelopes) before any
// compile starts, so when capacity runs out mid-envelope the overflow
// jobs 429 immediately — the same contract as /v1/jobs, applied at item
// granularity.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	codec := requestCodec(r)
	var b BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := codec.DecodeBatch(body, &b); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body over %d bytes", tooLarge.Limit))
		} else {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		}
		return
	}
	if len(b.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch: provide at least one job"))
		return
	}
	if len(b.Jobs) > s.opts.MaxBatchJobs {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d jobs over the limit %d; split the envelope", len(b.Jobs), s.opts.MaxBatchJobs))
		return
	}
	if s.draining.Load() {
		s.metrics.batchRejected.Add(int64(len(b.Jobs)))
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}

	// Resolve and admit every job before streaming starts: rejections are
	// decided up front (and written first), so admission never depends on
	// how fast earlier compiles run.
	type pending struct {
		idx int
		job pipeline.Job
	}
	var failed []BatchItem
	var admitted []pending
	for i := range b.Jobs {
		job, err := s.resolveJob(b.Jobs[i])
		if err != nil {
			failed = append(failed, BatchItem{Index: i, Status: http.StatusBadRequest, Error: errString(err)})
			continue
		}
		if n := job.Graph.N(); n > s.opts.MaxSyncNodes {
			failed = append(failed, BatchItem{Index: i, Status: http.StatusRequestEntityTooLarge,
				Error: fmt.Sprintf("graph has %d nodes, over the synchronous limit %d; submit it to POST /v1/jobs", n, s.opts.MaxSyncNodes)})
			continue
		}
		select {
		case s.batchSem <- struct{}{}:
			admitted = append(admitted, pending{idx: i, job: job})
		default:
			s.metrics.batchRejected.Add(1)
			failed = append(failed, BatchItem{Index: i, Status: http.StatusTooManyRequests,
				Error: fmt.Sprintf("batch capacity full (%d in flight); retry later", s.opts.QueueDepth)})
		}
	}
	s.metrics.batchJobs.Add(int64(len(admitted)))

	w.Header().Set("Content-Type", responseCodec(r).StreamContentType())
	w.WriteHeader(http.StatusOK)
	iw := responseCodec(r).NewItemWriter(w)
	flusher, _ := w.(http.Flusher)

	// One writer goroutine owns the stream; compile goroutines hand it
	// finished items over a buffered channel (capacity = envelope size, so
	// a slow client never blocks a compile past its own item). The writer
	// drains every item already waiting before paying a flush: under a
	// fast cache-hit storm that turns one syscall per item into one per
	// burst, which is most of the endpoint's throughput at small graphs.
	items := make(chan *BatchItem, len(b.Jobs))
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for it := range items {
			// A mid-stream write error means the client went away; the
			// remaining compiles still run (their results may be cached).
			_ = iw.WriteItem(it)
		drain:
			for {
				select {
				case more, ok := <-items:
					if !ok {
						break drain
					}
					_ = iw.WriteItem(more)
				default:
					break drain
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}()

	for i := range failed {
		items <- &failed[i]
	}
	var wg sync.WaitGroup
	for _, p := range admitted {
		wg.Add(1)
		p := p
		run := func() {
			defer wg.Done()
			defer func() { <-s.batchSem }()
			res := s.pipe.CompileContext(r.Context(), p.job)
			s.metrics.observeCompile(res.Elapsed, res.Err)
			if res.Err != nil {
				status := http.StatusUnprocessableEntity
				if errors.Is(res.Err, dfg.ErrCyclic) || errors.Is(res.Err, dfg.ErrDuplicateName) || errors.Is(res.Err, dfg.ErrIndexRange) {
					status = http.StatusBadRequest
				}
				items <- &BatchItem{Index: p.idx, Status: status, Error: errString(res.Err)}
				return
			}
			items <- &BatchItem{Index: p.idx, Status: http.StatusOK, Result: s.toResponse(res)}
		}
		// Jobs run on the persistent worker pool; when it is saturated (or
		// drained away) a fresh goroutine keeps the envelope moving rather
		// than blocking the handler on pool capacity.
		select {
		case s.batchWork <- run:
		default:
			go run()
		}
	}
	wg.Wait()
	close(items)
	<-writerDone
}

// specCache memoises workload-spec graphs (see Server.specs). Bounded
// and concurrency-safe; eviction is arbitrary-entry, which is fine for a
// cache whose working set is "the specs currently being stormed".
type specCache struct {
	mu sync.RWMutex
	m  map[string]*dfg.Graph
}

// maxSpecCacheEntries bounds the cache; specs are short strings and
// graphs are shared anyway, so the bound is about hostile spec churn,
// not memory from legitimate use.
const maxSpecCacheEntries = 512

func (c *specCache) get(spec string) (*dfg.Graph, bool) {
	c.mu.RLock()
	g, ok := c.m[spec]
	c.mu.RUnlock()
	return g, ok
}

func (c *specCache) put(spec string, g *dfg.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*dfg.Graph)
	}
	if len(c.m) >= maxSpecCacheEntries {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[spec] = g
}
