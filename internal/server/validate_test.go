package server

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestValidateCompileRequest(t *testing.T) {
	dfg := json.RawMessage(`{"name":"g","nodes":[]}`)
	cases := []struct {
		name  string
		req   CompileRequest
		field string // expected FieldError.Field, "" = valid
	}{
		{"workload ok", CompileRequest{Workload: "3dft"}, ""},
		{"dfg ok", CompileRequest{DFG: dfg}, ""},
		{"no graph", CompileRequest{}, "workload"},
		{"both graphs", CompileRequest{Workload: "3dft", DFG: dfg}, "workload"},
		{"negative c", CompileRequest{Workload: "3dft", Select: &SelectConfig{C: -1}}, "select.c"},
		{"negative pdef", CompileRequest{Workload: "3dft", Select: &SelectConfig{Pdef: -2}}, "select.pdef"},
		{"bad span", CompileRequest{Workload: "3dft", Select: &SelectConfig{Span: -3}}, "select.span"},
		{"unlimited span ok", CompileRequest{Workload: "3dft", Select: &SelectConfig{Span: -1}}, ""},
		{"negative epsilon", CompileRequest{Workload: "3dft", Select: &SelectConfig{Epsilon: -0.5}}, "select.epsilon"},
		{"negative alpha", CompileRequest{Workload: "3dft", Select: &SelectConfig{Alpha: -1}}, "select.alpha"},
		{"bad priority", CompileRequest{Workload: "3dft", Sched: &SchedConfig{Priority: "F9"}}, "sched.priority"},
		{"good priority", CompileRequest{Workload: "3dft", Sched: &SchedConfig{Priority: "f1"}}, ""},
		{"bad tie", CompileRequest{Workload: "3dft", Sched: &SchedConfig{Tie: "sideways"}}, "sched.tie"},
		{"stop select ok", CompileRequest{Workload: "3dft", StopAfter: "select"}, ""},
		{"stop census ok", CompileRequest{Workload: "3dft", StopAfter: "census"}, ""},
		{"stop schedule ok", CompileRequest{Workload: "3dft", StopAfter: "schedule"}, ""},
		{"stop unknown", CompileRequest{Workload: "3dft", StopAfter: "link"}, "stop_after"},
		{"stop parse rejected", CompileRequest{Workload: "3dft", StopAfter: "parse"}, "stop_after"},
		{"spans ok", CompileRequest{Workload: "3dft", Spans: []int{0, 1, 2}}, ""},
		{"bad span value", CompileRequest{Workload: "3dft", Spans: []int{0, -2}}, "spans"},
		{"spans with stop select", CompileRequest{Workload: "3dft", Spans: []int{0, 1}, StopAfter: "select"}, "spans"},
		{"spans with stop census", CompileRequest{Workload: "3dft", Spans: []int{0, 1}, StopAfter: "census"}, "spans"},
		{"spans with stop schedule", CompileRequest{Workload: "3dft", Spans: []int{0, 1}, StopAfter: "schedule"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRequest(tc.req)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v (%T), want a *FieldError", err, err)
			}
			if fe.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

// TestToJobRejectsWithFieldErrors pins that the handler path surfaces the
// typed validation errors as 400s with the field name in the message.
func TestToJobRejectsWithFieldErrors(t *testing.T) {
	_, err := toJob(CompileRequest{Workload: "3dft", Select: &SelectConfig{Pdef: -1}})
	if err == nil {
		t.Fatal("invalid request accepted")
	}
	var bad badRequestError
	if !errors.As(err, &bad) {
		t.Fatalf("err = %T, want badRequestError", err)
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "select.pdef" {
		t.Fatalf("err = %v, want a select.pdef FieldError", err)
	}
}
