package server_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"mpsched/internal/server"
	"mpsched/internal/server/client"
)

// BenchmarkServerThroughput measures end-to-end jobs/sec through the HTTP
// layer (in-process httptest transport) over a mixed DFT/FIR/MatMul fleet
// — the serving-side counterpart of the pipeline batch benchmarks.
// "cold" disables the result cache so every request pays the full
// select→schedule cost; "warm" serves the steady state where the fleet's
// workloads repeat and the sharded cache answers them.
func BenchmarkServerThroughput(b *testing.B) {
	fleet := []string{"3dft", "ndft:4", "ndft:5", "fir:8,4", "fir:12,2", "matmul:3", "butterfly:3", "fft:8"}

	run := func(b *testing.B, opts server.Options) {
		s := server.New(opts)
		ts := httptest.NewServer(s)
		defer ts.Close()
		c := client.New(ts.URL)
		ctx := context.Background()

		// One pass outside the clock: fills the cache in warm mode and
		// fails fast if any spec is broken.
		for _, spec := range fleet {
			if _, err := c.Compile(ctx, server.CompileRequest{Workload: spec}); err != nil {
				b.Fatalf("%s: %v", spec, err)
			}
		}

		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				spec := fleet[i%len(fleet)]
				if _, err := c.Compile(ctx, server.CompileRequest{Workload: spec}); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}

	b.Run("cold", func(b *testing.B) { run(b, server.Options{CacheEntries: -1}) })
	b.Run("warm", func(b *testing.B) { run(b, server.Options{}) })
}
