package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpsched/internal/server"
	"mpsched/internal/wire"
)

// BenchmarkBatchBinary64 measures the full /v1/batch handler path for a
// 64-job binary envelope against a hot cache — the storm shape the
// serving perf gate runs, minus the network and the client. It is the
// reference measurement for the tracing/metrics overhead budget on the
// batched path.
func BenchmarkBatchBinary64(b *testing.B) {
	s := server.New(server.Options{})
	defer s.Drain(context.Background())

	// 64 identical jobs mirror the CI storm shape (its scenario has one
	// member), and every job is a cache hit after the warm-up below.
	var env wire.BatchRequest
	for i := 0; i < 64; i++ {
		env.Jobs = append(env.Jobs, server.CompileRequest{Workload: "fft:8"})
	}
	var buf bytes.Buffer
	if err := wire.Binary.EncodeBatch(&buf, &env); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(raw))
		req.Header.Set("Content-Type", wire.ContentTypeBinary)
		req.Header.Set("Accept", wire.ContentTypeBinary)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code
	}
	// First envelope warms the result cache so iterations measure the
	// serving overhead, not the initial compiles.
	if code := do(); code != http.StatusOK {
		b.Fatalf("warm-up status %d", code)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}
