package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mpsched/internal/obs"
	"mpsched/internal/server"
	"mpsched/internal/server/client"
	"mpsched/internal/wire"
)

// postRaw issues one request at the curl level — explicit body bytes,
// Content-Type and X-Mpsched-Trace header — and returns the response
// with its body read, so tests can pin the header contract exactly as a
// client on the wire sees it.
func postRaw(t *testing.T, url, contentType, traceID string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestTraceHeaderEcho pins the trace contract on every compile-path
// route in both codecs: the server echoes the client's X-Mpsched-Trace
// ID on the response, and the response body carries the same ID where
// the shape has a trace field.
func TestTraceHeaderEcho(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	base := c.BaseURL()
	for _, codec := range []wire.Codec{wire.JSON, wire.Binary} {
		for _, route := range []string{"/v1/compile", "/v1/jobs", "/v1/batch"} {
			id := fmt.Sprintf("trace-%s%s", codec.Name(), strings.ReplaceAll(route, "/", "-"))
			var body bytes.Buffer
			var err error
			if route == "/v1/batch" {
				err = codec.EncodeBatch(&body, &wire.BatchRequest{Jobs: []server.CompileRequest{
					{Workload: "3dft"}, {Workload: "fft:8"},
				}})
			} else {
				err = codec.EncodeRequest(&body, &server.CompileRequest{Workload: "3dft"})
			}
			if err != nil {
				t.Fatal(err)
			}
			resp, data := postRaw(t, base+route, codec.ContentType(), id, body.Bytes())
			if resp.StatusCode/100 != 2 {
				t.Fatalf("%s %s: status %d: %s", codec.Name(), route, resp.StatusCode, data)
			}
			if got := resp.Header.Get(obs.TraceHeader); got != id {
				t.Errorf("%s %s: echoed trace %q, want %q", codec.Name(), route, got, id)
			}
			switch route {
			case "/v1/compile":
				var cr server.CompileResponse
				if err := codec.DecodeResponse(bytes.NewReader(data), &cr); err != nil {
					t.Fatalf("%s compile response: %v", codec.Name(), err)
				}
				if cr.TraceID != id {
					t.Errorf("%s compile body trace_id = %q, want %q", codec.Name(), cr.TraceID, id)
				}
			case "/v1/jobs":
				var jr server.JobResponse
				if err := json.Unmarshal(data, &jr); err != nil {
					t.Fatalf("%s jobs response: %v", codec.Name(), err)
				}
				if jr.TraceID != id {
					t.Errorf("%s jobs body trace_id = %q, want %q", codec.Name(), jr.TraceID, id)
				}
			}
		}
	}
}

// TestBinaryInFrameTraceAdopted: the binary codec carries the trace ID
// inside the request frame; with no header at all, the server must adopt
// the framed ID and still echo it on the response header.
func TestBinaryInFrameTraceAdopted(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	var body bytes.Buffer
	req := server.CompileRequest{Workload: "3dft", TraceID: "framed-trace-01"}
	if err := wire.Binary.EncodeRequest(&body, &req); err != nil {
		t.Fatal(err)
	}
	resp, data := postRaw(t, c.BaseURL()+"/v1/compile", wire.Binary.ContentType(), "", body.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "framed-trace-01" {
		t.Errorf("echoed trace %q, want the in-frame id framed-trace-01", got)
	}
	var cr server.CompileResponse
	if err := wire.Binary.DecodeResponse(bytes.NewReader(data), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.TraceID != "framed-trace-01" {
		t.Errorf("response trace_id = %q, want framed-trace-01", cr.TraceID)
	}
}

// TestClientTracePropagation: the typed client forwards req.TraceID as
// the trace header, and the daemon's ID comes back on the typed
// response — the correlation loop mpschedbench relies on.
func TestClientTracePropagation(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	resp, err := c.Compile(ctx, server.CompileRequest{Workload: "3dft", TraceID: "client-trace-1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "client-trace-1" {
		t.Errorf("Compile trace = %q, want client-trace-1", resp.TraceID)
	}
	job, err := c.SubmitJob(ctx, server.CompileRequest{Workload: "3dft", TraceID: "client-trace-2"})
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID != "client-trace-2" {
		t.Errorf("SubmitJob trace = %q, want client-trace-2", job.TraceID)
	}
	// The terminal job snapshot still carries the same trace ID.
	final, err := c.WaitJob(ctx, job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.TraceID != "client-trace-2" {
		t.Errorf("final job trace = %q, want client-trace-2", final.TraceID)
	}
}

// fetchTrace polls GET /debug/traces/{id} until the trace is recorded:
// the ring insert happens after the handler wrote the response, so the
// client can race ahead of it.
func fetchTrace(t *testing.T, c *client.Client, id string) *obs.TraceData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		td, err := c.Trace(context.Background(), id)
		if err == nil {
			return td
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			t.Fatalf("trace %s: %v", id, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// syncBuffer is a goroutine-safe log sink (the recorder logs from
// handler goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestSlowTraceLogMatchesDebugEndpoint drives one compile over a
// threshold low enough that every request logs, then pins that the
// slow-trace log line and GET /debug/traces/{id} describe the identical
// span set — same names, same order, same millisecond durations.
func TestSlowTraceLogMatchesDebugEndpoint(t *testing.T) {
	var logBuf syncBuffer
	_, c := newTestServer(t, server.Options{
		SlowTrace: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	const id = "slowtrace0001"
	if _, err := c.Compile(context.Background(), server.CompileRequest{Workload: "fft:8", TraceID: id}); err != nil {
		t.Fatal(err)
	}
	td := fetchTrace(t, c, id)

	// The log write happens right after the ring insert fetchTrace waited
	// on, but in the handler goroutine — poll for the line.
	var line string
	deadline := time.Now().Add(5 * time.Second)
	for line == "" {
		for _, l := range strings.Split(logBuf.String(), "\n") {
			if strings.Contains(l, "trace="+id) {
				line = l
				break
			}
		}
		if line == "" {
			if time.Now().After(deadline) {
				t.Fatalf("no slow-trace log line for %s in:\n%s", id, logBuf.String())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !strings.Contains(line, "slow trace") || !strings.Contains(line, "route=") {
		t.Errorf("malformed slow-trace line: %q", line)
	}
	m := regexp.MustCompile(`spans="([^"]*)"`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("no spans attribute in slow-trace line: %q", line)
	}
	if want := td.SpanSummary(); m[1] != want {
		t.Errorf("slow log spans %q != /debug/traces/%s spans %q", m[1], id, want)
	}
}

// TestTraceSpanSumApproxWallClock: the top-level spans partition the
// request — their durations must sum to ≈ the trace's wall clock, with
// "stage:*" spans excluded (they nest inside "compile").
func TestTraceSpanSumApproxWallClock(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	const id = "spansum000001"
	if _, err := c.Compile(context.Background(), server.CompileRequest{Workload: "fft:8", TraceID: id}); err != nil {
		t.Fatal(err)
	}
	td := fetchTrace(t, c, id)
	if td.Status != http.StatusOK || td.DurationMS <= 0 {
		t.Fatalf("trace not terminal: %+v", td)
	}
	var sum float64
	seen := map[string]bool{}
	for _, sp := range td.Spans {
		if strings.HasPrefix(sp.Name, "stage:") {
			continue
		}
		seen[sp.Name] = true
		sum += sp.DurationMS
	}
	for _, name := range []string{"decode", "compile", "encode"} {
		if !seen[name] {
			t.Errorf("top-level span %q missing from %v", name, td.Spans)
		}
	}
	// Spans are measured inside the window the trace duration measures,
	// and top-level spans do not overlap — the sum cannot meaningfully
	// exceed the wall clock, and must account for most of it (the code
	// between spans is a few map lookups and header writes).
	if sum > td.DurationMS*1.05+0.05 {
		t.Errorf("span sum %.3fms exceeds wall clock %.3fms", sum, td.DurationMS)
	}
	if sum < td.DurationMS*0.4 {
		t.Errorf("span sum %.3fms covers too little of wall clock %.3fms", sum, td.DurationMS)
	}
}

// TestCompileErrorLatencyRecorded: failed compiles must land in the
// outcome="error" latency distribution (the old reservoir dropped them,
// hiding error storms from the quantiles), and the request accounting
// invariant CI asserts must hold on a live scrape.
func TestCompileErrorLatencyRecorded(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	// An empty graph decodes but cannot be compiled: a pipeline-level
	// failure, which is exactly what must be measured.
	_, err := c.Compile(ctx, server.CompileRequest{DFG: []byte(`{"name":"empty","nodes":[],"edges":[]}`)})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty graph: err = %v, want a 422", err)
	}
	if _, err := c.Compile(ctx, server.CompileRequest{Workload: "3dft"}); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("mpschedd_compile_seconds_count", "outcome", "error"); !ok || v < 1 {
		t.Errorf("compile_seconds_count{outcome=error} = %g, %v; want >= 1", v, ok)
	}
	if v, ok := m.Value("mpschedd_compile_seconds_count", "outcome", "ok"); !ok || v < 1 {
		t.Errorf("compile_seconds_count{outcome=ok} = %g, %v; want >= 1", v, ok)
	}
	if v, ok := m.Value("mpschedd_compile_errors_total"); !ok || v < 1 {
		t.Errorf("compile_errors_total = %g, %v; want >= 1", v, ok)
	}
	// The scrape-time invariant the CI consistency gate checks: requests
	// are counted before their latency records, never after.
	for _, s := range m {
		if s.Name != "mpschedd_request_seconds_count" {
			continue
		}
		route := s.Labels["route"]
		if total, ok := m.Value("mpschedd_requests_total", "route", route); !ok || s.Value > total {
			t.Errorf("route %q: request_seconds_count %g > requests_total %g", route, s.Value, total)
		}
	}
}

// TestDebugTracesRecent: GET /debug/traces returns the most recent
// traces newest-first and honours ?n=.
func TestDebugTracesRecent(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Compile(ctx, server.CompileRequest{Workload: "3dft", TraceID: fmt.Sprintf("recent-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	fetchTrace(t, c, "recent-2") // wait until the last one is recorded

	resp, err := http.Get(c.BaseURL() + "/debug/traces?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Traces []obs.TraceData `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(dump.Traces))
	}
	if dump.Traces[0].ID != "recent-2" || dump.Traces[1].ID != "recent-1" {
		t.Errorf("traces not newest-first: %s, %s", dump.Traces[0].ID, dump.Traces[1].ID)
	}
	if resp, err := http.Get(c.BaseURL() + "/debug/traces?n=0"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?n=0 status %d, want 400", resp.StatusCode)
		}
	}
}
