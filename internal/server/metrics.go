package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters, exported in Prometheus text format
// at GET /metrics. Counters are lock-free; the latency reservoir takes a
// short mutex per observation.
type metrics struct {
	start time.Time

	compiles      atomic.Int64 // compile attempts (sync + async)
	compileErrors atomic.Int64 // attempts that returned an error

	jobsSubmitted atomic.Int64 // async jobs accepted into the queue
	jobsCompleted atomic.Int64 // async jobs finished successfully
	jobsFailed    atomic.Int64 // async jobs finished with an error
	jobsRejected  atomic.Int64 // async jobs refused at admission (queue full / draining)

	batchJobs     atomic.Int64 // batch jobs admitted across all envelopes
	batchRejected atomic.Int64 // batch jobs refused at admission (capacity / draining)

	mu       sync.Mutex
	requests map[string]int64 // route pattern → request count
	// latencies is a fixed-size reservoir of recent compile wall-clock
	// seconds; quantiles are computed over it at scrape time.
	latencies []float64
	latIdx    int
	latFull   bool
}

// latencyReservoirSize bounds the quantile window: large enough that p99
// is meaningful, small enough that a scrape-time sort is trivial.
const latencyReservoirSize = 2048

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		requests:  map[string]int64{},
		latencies: make([]float64, latencyReservoirSize),
	}
}

// incRequest counts one request against its route pattern.
func (m *metrics) incRequest(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

// observeCompile records one compile attempt's outcome and latency.
func (m *metrics) observeCompile(d time.Duration, err error) {
	m.compiles.Add(1)
	if err != nil {
		m.compileErrors.Add(1)
		return
	}
	m.mu.Lock()
	m.latencies[m.latIdx] = d.Seconds()
	m.latIdx++
	if m.latIdx == len(m.latencies) {
		m.latIdx = 0
		m.latFull = true
	}
	m.mu.Unlock()
}

// quantiles returns the requested quantiles over the reservoir snapshot,
// or nil before the first successful compile.
func (m *metrics) quantiles(qs ...float64) []float64 {
	m.mu.Lock()
	n := m.latIdx
	if m.latFull {
		n = len(m.latencies)
	}
	snap := append([]float64(nil), m.latencies[:n]...)
	m.mu.Unlock()
	if len(snap) == 0 {
		return nil
	}
	sort.Float64s(snap)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(snap)-1))
		out[i] = snap[idx]
	}
	return out
}

// render writes the Prometheus text exposition. queueDepth and cache
// state are sampled by the caller so metrics stays decoupled from Server.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, cacheHits, cacheMisses int64, cacheEntries int) {
	uptime := time.Since(m.start).Seconds()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	counts := make([]int64, len(routes))
	for i, r := range routes {
		counts[i] = m.requests[r]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mpschedd_requests_total HTTP requests by route.\n# TYPE mpschedd_requests_total counter\n")
	for i, r := range routes {
		fmt.Fprintf(w, "mpschedd_requests_total{route=%q} %d\n", r, counts[i])
	}

	counter("mpschedd_compiles_total", "Compile attempts (sync and async).", m.compiles.Load())
	counter("mpschedd_compile_errors_total", "Compile attempts that failed.", m.compileErrors.Load())
	counter("mpschedd_cache_hits_total", "Result-cache hits.", cacheHits)
	counter("mpschedd_cache_misses_total", "Result-cache misses.", cacheMisses)
	gauge("mpschedd_cache_entries", "Results currently cached.", float64(cacheEntries))

	counter("mpschedd_jobs_submitted_total", "Async jobs accepted into the queue.", m.jobsSubmitted.Load())
	counter("mpschedd_jobs_completed_total", "Async jobs finished successfully.", m.jobsCompleted.Load())
	counter("mpschedd_jobs_failed_total", "Async jobs finished with an error.", m.jobsFailed.Load())
	counter("mpschedd_jobs_rejected_total", "Async jobs refused at admission.", m.jobsRejected.Load())

	counter("mpschedd_batch_jobs_total", "Batch jobs admitted across all envelopes.", m.batchJobs.Load())
	counter("mpschedd_batch_rejected_total", "Batch jobs refused at admission.", m.batchRejected.Load())

	gauge("mpschedd_queue_depth", "Async jobs waiting in the queue.", float64(queueDepth))
	gauge("mpschedd_queue_capacity", "Async queue admission bound.", float64(queueCap))
	gauge("mpschedd_uptime_seconds", "Seconds since the daemon started.", uptime)

	// Every compile — sync or async — passes through observeCompile, so
	// successful compiles is the jobs/sec numerator.
	completed := m.compiles.Load() - m.compileErrors.Load()
	jps := 0.0
	if uptime > 0 {
		jps = float64(completed) / uptime
	}
	gauge("mpschedd_jobs_per_second", "Successful compiles per second of uptime.", jps)

	if q := m.quantiles(0.5, 0.99); q != nil {
		fmt.Fprintf(w, "# HELP mpschedd_compile_latency_seconds Recent compile wall-clock latency.\n# TYPE mpschedd_compile_latency_seconds summary\n")
		fmt.Fprintf(w, "mpschedd_compile_latency_seconds{quantile=\"0.5\"} %g\n", q[0])
		fmt.Fprintf(w, "mpschedd_compile_latency_seconds{quantile=\"0.99\"} %g\n", q[1])
	}
}
