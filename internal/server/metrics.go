package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpsched/internal/obs"
	"mpsched/internal/store"
)

// metrics holds the daemon's counters and latency distributions,
// exported in Prometheus text format at GET /metrics. Counters are
// lock-free; distributions are log-linear histograms (internal/obs, the
// same implementation loadgen uses client-side) behind per-family
// mutexes — O(1) per observation over the full history, replacing the
// old 2048-sample sort-at-scrape reservoir that silently forgot
// everything but the most recent window.
type metrics struct {
	start time.Time

	compiles      atomic.Int64 // compile attempts (sync + async + batch)
	compileErrors atomic.Int64 // attempts that returned an error

	jobsSubmitted atomic.Int64 // async jobs accepted into the queue
	jobsCompleted atomic.Int64 // async jobs finished successfully
	jobsFailed    atomic.Int64 // async jobs finished with an error
	jobsRejected  atomic.Int64 // async jobs refused at admission (queue full / draining)

	batchJobs     atomic.Int64 // batch jobs admitted across all envelopes
	batchRejected atomic.Int64 // batch jobs refused at admission (capacity / draining)

	inflightRequests atomic.Int64 // HTTP requests currently in a handler
	inflightBatch    atomic.Int64 // batch jobs admitted and not yet finished

	panics          atomic.Int64 // panics isolated (handler or compile); the daemon survived each one
	deadlineExpired atomic.Int64 // requests/jobs 504ed by their own deadline budget
	shedAsync       atomic.Int64 // async submissions shed by the brownout controller
	shedSync        atomic.Int64 // sync compiles/batches shed by the brownout controller

	// compileOK / compileErr split compile latency by outcome. Errors get
	// their own distribution instead of being dropped (the old reservoir
	// recorded nothing for failures, making error storms invisible in the
	// quantiles — fast-failing requests looked like a healthy p50).
	compileOK  obs.LockedHistogram
	compileErr obs.LockedHistogram

	// queueWait is the time async jobs spent queued before a worker
	// picked them up.
	queueWait obs.LockedHistogram

	mu       sync.Mutex
	requests map[string]int64 // route pattern → request count
	// reqHist is end-to-end request latency per route × codec; stages is
	// compiler-stage wall clock per stage name (plus "cache" for results
	// served from the result cache). Histogram pointers are created once
	// per key under mu and then recorded into via their own locks, so the
	// shared map mutex is held only for a lookup.
	reqHist map[reqKey]*obs.LockedHistogram
	stages  map[string]*obs.LockedHistogram

	// stageCache aliases stages["cache"], created eagerly: the batched
	// cache-hit path records into it per job, and the direct pointer
	// skips the map lookup under the shared mutex on that storm path.
	stageCache *obs.LockedHistogram
}

// reqKey labels one request-latency series.
type reqKey struct{ route, codec string }

func newMetrics() *metrics {
	cache := &obs.LockedHistogram{}
	return &metrics{
		start:      time.Now(),
		requests:   map[string]int64{},
		reqHist:    map[reqKey]*obs.LockedHistogram{},
		stages:     map[string]*obs.LockedHistogram{"cache": cache},
		stageCache: cache,
	}
}

// incRequest counts one request against its route pattern.
func (m *metrics) incRequest(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

// observeRequest records one request's end-to-end latency. Always called
// after incRequest returns, so at any scrape requests_total ≥ the
// histogram count — the consistency invariant CI asserts under load.
func (m *metrics) observeRequest(route, codec string, d time.Duration) {
	k := reqKey{route, codec}
	m.mu.Lock()
	h := m.reqHist[k]
	if h == nil {
		h = &obs.LockedHistogram{}
		m.reqHist[k] = h
	}
	m.mu.Unlock()
	h.Record(d)
}

// observeCompile records one compile attempt's outcome and latency.
// Failed compiles record too, under their own outcome label.
func (m *metrics) observeCompile(d time.Duration, err error) {
	m.compiles.Add(1)
	if err != nil {
		m.compileErrors.Add(1)
		m.compileErr.Record(d)
		return
	}
	m.compileOK.Record(d)
}

// observeStage records one compiler stage's wall clock.
func (m *metrics) observeStage(stage string, d time.Duration) {
	m.mu.Lock()
	h := m.stages[stage]
	if h == nil {
		h = &obs.LockedHistogram{}
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.Record(d)
}

// observeQueueWait records how long an async job waited for a worker.
func (m *metrics) observeQueueWait(d time.Duration) {
	m.queueWait.Record(d)
}

// summary writes one label set of a summary family: the p50/p99
// quantile samples plus the _sum and _count series Prometheus
// conventions expect. labels is the pre-rendered label prefix without
// the quantile (e.g. `route="POST /v1/compile",codec="json"`), or "".
func summary(w io.Writer, name, labels string, h obs.Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "%s{%s%squantile=\"0.5\"} %g\n", name, labels, sep, h.Quantile(0.5).Seconds())
	fmt.Fprintf(w, "%s{%s%squantile=\"0.99\"} %g\n", name, labels, sep, h.Quantile(0.99).Seconds())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum().Seconds(), name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.Sum().Seconds(), name, labels, h.Count())
	}
}

// render writes the Prometheus text exposition. queueDepth and cache
// state are sampled by the caller so metrics stays decoupled from Server.
// tiers, when non-empty, is the per-tier breakdown of a tiered result
// store (memory + disk).
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, cacheHits, cacheMisses int64, cacheEntries int, tiers []store.TierStats) {
	uptime := time.Since(m.start).Seconds()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	// Snapshot every labeled family under one lock hold, render after.
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	counts := make([]int64, len(routes))
	for i, r := range routes {
		counts[i] = m.requests[r]
	}
	reqKeys := make([]reqKey, 0, len(m.reqHist))
	for k := range m.reqHist {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].codec < reqKeys[j].codec
	})
	reqHists := make([]*obs.LockedHistogram, len(reqKeys))
	for i, k := range reqKeys {
		reqHists[i] = m.reqHist[k]
	}
	stageNames := make([]string, 0, len(m.stages))
	for st := range m.stages {
		stageNames = append(stageNames, st)
	}
	sort.Strings(stageNames)
	stageHists := make([]*obs.LockedHistogram, len(stageNames))
	for i, st := range stageNames {
		stageHists[i] = m.stages[st]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mpschedd_requests_total HTTP requests by route.\n# TYPE mpschedd_requests_total counter\n")
	for i, r := range routes {
		fmt.Fprintf(w, "mpschedd_requests_total{route=%q} %d\n", r, counts[i])
	}

	counter("mpschedd_compiles_total", "Compile attempts (sync and async).", m.compiles.Load())
	counter("mpschedd_compile_errors_total", "Compile attempts that failed.", m.compileErrors.Load())
	counter("mpschedd_cache_hits_total", "Result-cache hits.", cacheHits)
	counter("mpschedd_cache_misses_total", "Result-cache misses.", cacheMisses)
	gauge("mpschedd_cache_entries", "Results currently cached.", float64(cacheEntries))

	if len(tiers) > 0 {
		tierFamily := func(name, help, kind string, v func(store.TierStats) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
			for _, t := range tiers {
				fmt.Fprintf(w, "%s{tier=%q} %g\n", name, t.Tier, v(t))
			}
		}
		tierFamily("mpschedd_store_hits_total", "Result-store hits by tier.", "counter",
			func(t store.TierStats) float64 { return float64(t.Hits) })
		tierFamily("mpschedd_store_misses_total", "Result-store misses by tier.", "counter",
			func(t store.TierStats) float64 { return float64(t.Misses) })
		tierFamily("mpschedd_store_evictions_total", "Result-store evictions by tier.", "counter",
			func(t store.TierStats) float64 { return float64(t.Evictions) })
		tierFamily("mpschedd_store_entries", "Results currently stored by tier.", "gauge",
			func(t store.TierStats) float64 { return float64(t.Entries) })
		tierFamily("mpschedd_store_bytes", "Bytes held by tier (disk tiers only).", "gauge",
			func(t store.TierStats) float64 { return float64(t.Bytes) })
	}

	counter("mpschedd_jobs_submitted_total", "Async jobs accepted into the queue.", m.jobsSubmitted.Load())
	counter("mpschedd_jobs_completed_total", "Async jobs finished successfully.", m.jobsCompleted.Load())
	counter("mpschedd_jobs_failed_total", "Async jobs finished with an error.", m.jobsFailed.Load())
	counter("mpschedd_jobs_rejected_total", "Async jobs refused at admission.", m.jobsRejected.Load())

	counter("mpschedd_batch_jobs_total", "Batch jobs admitted across all envelopes.", m.batchJobs.Load())
	counter("mpschedd_batch_rejected_total", "Batch jobs refused at admission.", m.batchRejected.Load())

	counter("mpschedd_panics_total", "Panics isolated to one request or job; the daemon survived each.", m.panics.Load())
	counter("mpschedd_deadline_expired_total", "Requests or jobs that ran out of their deadline budget.", m.deadlineExpired.Load())
	fmt.Fprintf(w, "# HELP mpschedd_shed_total Work shed by the brownout controller, by class.\n# TYPE mpschedd_shed_total counter\n")
	fmt.Fprintf(w, "mpschedd_shed_total{class=\"async\"} %d\n", m.shedAsync.Load())
	fmt.Fprintf(w, "mpschedd_shed_total{class=\"sync\"} %d\n", m.shedSync.Load())

	gauge("mpschedd_queue_depth", "Async jobs waiting in the queue.", float64(queueDepth))
	gauge("mpschedd_queue_capacity", "Async queue admission bound.", float64(queueCap))
	gauge("mpschedd_inflight_requests", "HTTP requests currently being handled.", float64(m.inflightRequests.Load()))
	gauge("mpschedd_inflight_batch_jobs", "Batch jobs admitted and not yet finished.", float64(m.inflightBatch.Load()))
	gauge("mpschedd_uptime_seconds", "Seconds since the daemon started.", uptime)

	// Every compile — sync or async — passes through observeCompile, so
	// successful compiles is the jobs/sec numerator.
	completed := m.compiles.Load() - m.compileErrors.Load()
	jps := 0.0
	if uptime > 0 {
		jps = float64(completed) / uptime
	}
	gauge("mpschedd_jobs_per_second", "Successful compiles per second of uptime.", jps)

	if len(reqKeys) > 0 {
		fmt.Fprintf(w, "# HELP mpschedd_request_seconds End-to-end request latency by route and codec.\n# TYPE mpschedd_request_seconds summary\n")
		for i, k := range reqKeys {
			labels := fmt.Sprintf("route=%q,codec=%q", k.route, k.codec)
			summary(w, "mpschedd_request_seconds", labels, reqHists[i].Snapshot())
		}
	}

	// mpschedd_compile_seconds replaces the pre-observability
	// mpschedd_compile_latency_seconds summary (which sampled only the
	// last 2048 successes). Outcome-labeled so error latency is visible.
	okSnap, errSnap := m.compileOK.Snapshot(), m.compileErr.Snapshot()
	if okSnap.Count() > 0 || errSnap.Count() > 0 {
		fmt.Fprintf(w, "# HELP mpschedd_compile_seconds Compile wall-clock latency by outcome.\n# TYPE mpschedd_compile_seconds summary\n")
		if okSnap.Count() > 0 {
			summary(w, "mpschedd_compile_seconds", `outcome="ok"`, okSnap)
		}
		if errSnap.Count() > 0 {
			summary(w, "mpschedd_compile_seconds", `outcome="error"`, errSnap)
		}
	}

	if qw := m.queueWait.Snapshot(); qw.Count() > 0 {
		fmt.Fprintf(w, "# HELP mpschedd_queue_wait_seconds Async job wait from admission to a worker picking it up.\n# TYPE mpschedd_queue_wait_seconds summary\n")
		summary(w, "mpschedd_queue_wait_seconds", "", qw)
	}

	if len(stageNames) > 0 {
		fmt.Fprintf(w, "# HELP mpschedd_stage_seconds Compiler stage wall clock by stage (\"cache\" = served from the result cache).\n# TYPE mpschedd_stage_seconds summary\n")
		for i, st := range stageNames {
			summary(w, "mpschedd_stage_seconds", fmt.Sprintf("stage=%q", st), stageHists[i].Snapshot())
		}
	}
}
