package server

import (
	"fmt"
	"net/http"
	"time"

	"mpsched/internal/obs"
	"mpsched/internal/pipeline"
)

// statusWriter wraps the compile-path ResponseWriter to (1) capture the
// response status for the trace and (2) write the X-Mpsched-Trace echo
// header lazily, at the last moment before headers flush — the binary
// codec carries the trace ID inside the request frame, so the effective
// ID is only known after body decode, well into the handler.
type statusWriter struct {
	http.ResponseWriter
	// flusher is the underlying writer's Flusher, captured once so the
	// batch stream's per-burst Flush does not pay a type assertion each
	// time; nil when the underlying writer cannot flush.
	flusher http.Flusher
	trace   *obs.Trace
	status  int
}

func newStatusWriter(w http.ResponseWriter, tr *obs.Trace) *statusWriter {
	f, _ := w.(http.Flusher)
	return &statusWriter{ResponseWriter: w, flusher: f, trace: tr}
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
		w.Header().Set(obs.TraceHeader, w.trace.ID())
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Flush passes through to the underlying writer: handleBatch streams
// items and flushes per burst, which must keep working through the
// wrapper.
func (w *statusWriter) Flush() {
	if w.flusher != nil {
		w.flusher.Flush()
	}
}

// Status returns the written status, or 200 for a handler that never
// wrote an explicit one.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// stageHook bridges the compiler's per-stage callbacks into both
// telemetry sinks: the stage-duration metrics and — namespaced
// "stage:*", nested inside the surrounding "compile" span — the
// request's trace. jobIdx tags batch jobs (-1 elsewhere). Cache hits
// run no stages and fire no hooks; observeCompileResult records their
// "stage:cache" span instead, so the warm path pays the hook nothing.
func (s *Server) stageHook(tr *obs.Trace, jobIdx int) pipeline.StageHook {
	return func(info pipeline.StageInfo) {
		s.metrics.observeStage(info.Stage.String(), info.Elapsed)
		tr.Observe("stage:"+info.Stage.String(), jobIdx, time.Now().Add(-info.Elapsed), info.Elapsed)
	}
}

// observeCompileResult feeds one finished compile into both telemetry
// sinks: the outcome-labeled latency metric, the trace's "compile" span
// (derived from the pipeline's own Elapsed — one clock read, instead of
// a second timer pair around the call), and, for cache hits, the
// synthetic "stage:cache" stage (trace span + per-stage metric) — the
// whole compile was one cache lookup, which the stage hooks never saw.
// res is a pointer only to keep the per-job call on the batched storm
// path from copying the whole Result.
func (s *Server) observeCompileResult(tr *obs.Trace, jobIdx int, res *pipeline.Result) {
	s.metrics.observeCompile(res.Elapsed, res.Err)
	if tr == nil {
		return
	}
	start := time.Now().Add(-res.Elapsed)
	tr.Observe("compile", jobIdx, start, res.Elapsed)
	if res.CacheHit {
		s.metrics.observeStage("cache", res.Elapsed)
		tr.Observe("stage:cache", jobIdx, start, res.Elapsed)
	}
}

// tracesResponse is the body of GET /debug/traces.
type tracesResponse struct {
	Traces []obs.TraceData `json:"traces"`
}

// maxTracesPage caps ?n= so a hostile query cannot make the handler
// render an arbitrary amount; the ring itself bounds the real maximum.
const maxTracesPage = 1024

// handleTraces serves GET /debug/traces: the most recent traces, newest
// first, up to ?n= (default 32).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 1 || n > maxTracesPage {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("n must be an integer in [1, %d]", maxTracesPage))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, tracesResponse{Traces: s.traces.Recent(n)})
}

// handleTraceByID serves GET /debug/traces/{id}: one trace's full span
// breakdown, while it is still in the ring.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.traces.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no trace %q in the last %d", id, s.opts.TraceBuffer))
		return
	}
	s.writeJSON(w, http.StatusOK, td)
}
