package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"mpsched/internal/pipeline"
	"mpsched/internal/resilience"
)

// This file is the server half of the resilience layer (see
// internal/resilience): deadline propagation into compile contexts,
// panic isolation around handlers and compiles, brownout load shedding,
// and the unified backpressure response every rejection goes through.

// errOverloaded is the brownout rejection body. It names the signal so
// an operator reading client logs knows which metric to look at.
var errOverloaded = errors.New("server overloaded (queue-wait p99 over the shed threshold); retry later")

// requestDeadline merges the two ways a request carries its remaining
// time budget — the X-Mpsched-Deadline header and, for the binary
// codec, the in-frame field — into one effective budget. Zero means no
// deadline; negative means the budget expired in flight. When both are
// present the smaller wins: neither side can extend the other.
func requestDeadline(r *http.Request, frame time.Duration) (time.Duration, error) {
	hdr, err := resilience.ParseDeadline(r.Header.Get(resilience.DeadlineHeader))
	if err != nil {
		return 0, err
	}
	return minBudget(hdr, frame), nil
}

func minBudget(a, b time.Duration) time.Duration {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	}
	return b
}

// withBudget bounds ctx by a remaining budget. Budget 0 (no deadline)
// returns ctx unchanged with a no-op cancel, so the default path stays
// allocation-free.
func withBudget(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget == 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// compileJob runs one job through the pipeline with the server's panic
// perimeter around it: any panic — the chaos injector's, or a compiler
// bug that escapes the pipeline's own recover — becomes a failed Result
// carrying a *pipeline.PanicError, so the caller maps it to one 500
// while the daemon and every neighbouring job keep going.
func (s *Server) compileJob(ctx context.Context, job pipeline.Job) (res pipeline.Result) {
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.panics.Add(1)
			s.logger().Error("compile panic isolated", "job", job.Label(), "panic", rec)
			res = pipeline.Result{Job: job, Err: &pipeline.PanicError{Value: rec, Stack: debug.Stack()}}
		}
	}()
	if s.opts.Faults != nil {
		s.opts.Faults.CompilePanic(job.Label())
	}
	res = s.pipe.CompileContext(ctx, job)
	if res.Err != nil {
		if pe := (*pipeline.PanicError)(nil); errors.As(res.Err, &pe) {
			// The pipeline's own recover already converted it; count and
			// log here so both layers surface identically.
			s.metrics.panics.Add(1)
			s.logger().Error("compile panic isolated", "job", job.Label(), "panic", pe.Value)
		}
	}
	return res
}

// compileFailureStatus maps a failed compile to its HTTP status (whole
// request or batch item alike) and counts the deadline metric when the
// request's own budget was what killed it. reqCtx is the client
// connection's context, compileCtx the budget-bounded one derived from
// it.
func (s *Server) compileFailureStatus(reqCtx, compileCtx context.Context, err error) int {
	var pe *pipeline.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case reqCtx.Err() != nil:
		// The client went away; the status is for the log only.
		return http.StatusRequestTimeout
	case compileCtx.Err() != nil:
		s.metrics.deadlineExpired.Add(1)
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// writeExpired answers a request whose deadline passed before any work
// ran: the client's budget is gone, so the cheapest correct answer is an
// immediate 504.
func (s *Server) writeExpired(w http.ResponseWriter, budget time.Duration) {
	s.metrics.deadlineExpired.Add(1)
	s.writeError(w, http.StatusGatewayTimeout,
		fmt.Errorf("deadline expired %v before the compile started", -budget))
}

// writeRejected is the one funnel for backpressure responses — queue
// full, draining, brownout shedding. Every rejection carries
// Retry-After so a well-behaved client paces itself instead of
// hammering an overloaded server (previously the sync 429 path sent a
// bare status with no pacing hint).
func (s *Server) writeRejected(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", "1")
	s.writeError(w, status, err)
}

// shedSync reports whether the brownout controller currently refuses
// sync compile work (compiles and batch envelopes), writing the
// rejection when it does. Health checks never shed: an overloaded
// server that stops answering /healthz gets restarted, which helps
// nobody.
func (s *Server) shedSyncWork(w http.ResponseWriter) bool {
	if s.shed.Level() < resilience.ShedSync {
		return false
	}
	s.metrics.shedSync.Add(1)
	s.writeRejected(w, http.StatusTooManyRequests, errOverloaded)
	return true
}

// shedAsyncWork is shedSyncWork for async job submissions, which shed
// first — their clients planned to wait anyway, so turning them away is
// the cheapest relief.
func (s *Server) shedAsyncWork(w http.ResponseWriter) bool {
	if s.shed.Level() < resilience.ShedAsync {
		return false
	}
	s.metrics.shedAsync.Add(1)
	s.writeRejected(w, http.StatusTooManyRequests, errOverloaded)
	return true
}

// safely runs a handler inside the server's panic perimeter: a panic is
// recovered, counted, logged with its stack, and answered with a 500
// when the response has not started. http.ErrAbortHandler passes
// through — it is net/http's sanctioned way to abort a connection (the
// fault injector's drop uses it), not a bug to report.
func (s *Server) safely(w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.metrics.panics.Add(1)
		s.logger().Error("handler panic recovered",
			"route", r.URL.Path, "panic", rec, "stack", string(debug.Stack()))
		if sw, ok := w.(*statusWriter); !ok || sw.status == 0 {
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}
	}()
	h(w, r)
}

func (s *Server) logger() *slog.Logger {
	if s.opts.Logger != nil {
		return s.opts.Logger
	}
	return slog.Default()
}
