// Package obs is the serving stack's zero-dependency observability
// layer: per-request traces made of named spans, a fixed-size recorder
// that backs mpschedd's /debug/traces endpoints and its slow-trace log,
// the log-linear latency histogram shared by the load generator and the
// server's /metrics quantiles (hist.go), and a parser for the Prometheus
// text exposition so clients can diff a server's counters around a run
// (promtext.go).
//
// A Trace is created at the HTTP edge (one per request, identified by
// the X-Mpsched-Trace header, generated when the client sends none) and
// carried through the handler in the request context. Handlers attach
// spans — decode, admission, cache lookup, compiler stages, encode,
// batch flushes — and the edge finishes the trace with the response
// status and wall-clock cost. Finished traces land in a Recorder ring;
// traces over the slow threshold are additionally logged via log/slog
// with their full span breakdown.
//
// Span naming convention: top-level spans (decode, compile, encode,
// admit, flush, queue_wait) partition the request's wall clock — their
// durations sum to ≈ the trace duration. Spans prefixed "stage:" (the
// compiler stages, and "stage:cache" for a result served from the
// result cache) nest inside "compile" and are excluded from that sum.
//
// All of Trace's methods are safe on a nil receiver (no-ops), so code
// paths shared between traced and untraced requests need no guards, and
// spans may still be attached after Finish — an async job appends its
// queue-wait and compile spans when it eventually runs, long after the
// submit request's HTTP response went out.
package obs

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries the request's trace ID.
// Clients may set it to their own ID (any non-empty string up to
// MaxTraceIDLen bytes); the server echoes the effective ID on every
// traced response, so a load generator can correlate its own latency
// samples with the server's span breakdown.
const TraceHeader = "X-Mpsched-Trace"

// MaxTraceIDLen bounds client-supplied trace IDs; longer IDs are
// replaced with a generated one rather than stored (the ring buffer
// must not become a hostile-input memory sink).
const MaxTraceIDLen = 64

// NewTraceID returns a fresh 16-hex-char trace ID. IDs only need to be
// unique within the recorder's ring window, so a fast PRNG draw beats a
// CSPRNG read on the request hot path.
func NewTraceID() string {
	const hexdigits = "0123456789abcdef"
	v := rand.Uint64()
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Span is one timed step inside a trace.
type Span struct {
	// Name identifies the step ("decode", "compile", "stage:census", ...).
	Name string
	// Job is the batch-envelope job index the span belongs to, or -1 for
	// request-level spans.
	Job int
	// Start is the span's offset from the trace start.
	Start time.Duration
	// Duration is the span's wall-clock cost.
	Duration time.Duration
}

// maxSpansPerTrace caps a single trace's span list so a huge batch
// envelope cannot turn the ring buffer into unbounded memory; overflow
// is counted, not silently lost.
const maxSpansPerTrace = 512

// Trace is one request's span collection. Construct with NewTrace; all
// methods are goroutine-safe and no-ops on a nil receiver.
type Trace struct {
	mu       sync.Mutex
	id       string
	route    string
	codec    string
	start    time.Time
	status   int
	duration time.Duration
	finished bool
	spans    []Span
	dropped  int
}

// NewTrace starts a trace for one request. An empty (or over-long) id
// gets a generated one.
func NewTrace(id, route, codec string) *Trace {
	if id == "" || len(id) > MaxTraceIDLen {
		id = NewTraceID()
	}
	return &Trace{id: id, route: route, codec: codec, start: time.Now()}
}

// ID returns the trace's effective ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// AdoptID replaces a generated ID with one the client carried inside
// the request body (the binary codec's in-frame trace field, decoded
// after the trace already exists). No-op once the trace is finished, or
// for empty/over-long IDs.
func (t *Trace) AdoptID(id string) {
	if t == nil || id == "" || len(id) > MaxTraceIDLen {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.id = id
	}
	t.mu.Unlock()
}

// StartTime returns when the trace began. The start is set once in
// NewTrace and never mutated, so the read needs no lock — callers use it
// to pre-compute span offsets for ObserveSpans.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// ObserveSpans appends pre-built spans — Start already relative to
// StartTime — under a single lock acquisition. This is the batch
// writer's bulk path: one lock per flushed burst instead of one per
// job span. Spans beyond the per-trace cap count as dropped.
func (t *Trace) ObserveSpans(spans ...Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	n := maxSpansPerTrace - len(t.spans)
	if n > len(spans) {
		n = len(spans)
	}
	if n > 0 {
		t.spans = append(t.spans, spans[:n]...)
	}
	t.dropped += len(spans) - n
	t.mu.Unlock()
}

// Grow pre-sizes the span list for a caller that knows roughly how many
// spans are coming (a batch envelope records about two per job), so the
// storm path does not pay repeated append-growth copies. Capped at the
// per-trace span limit.
func (t *Trace) Grow(n int) {
	if t == nil || n <= 0 {
		return
	}
	if n > maxSpansPerTrace {
		n = maxSpansPerTrace
	}
	t.mu.Lock()
	if cap(t.spans) < n {
		s := make([]Span, len(t.spans), n)
		copy(s, t.spans)
		t.spans = s
	}
	t.mu.Unlock()
}

// Observe records one span from explicit timestamps. Spans beyond the
// per-trace cap are counted as dropped.
func (t *Trace) Observe(name string, job int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, Job: job, Start: start.Sub(t.start), Duration: d})
	}
	t.mu.Unlock()
}

// SpanTimer measures one span; obtain with Begin/BeginJob, close with
// End. The zero value (and any timer from a nil trace) is a no-op.
type SpanTimer struct {
	t    *Trace
	name string
	job  int
	t0   time.Time
}

// Begin starts a request-level span.
func (t *Trace) Begin(name string) SpanTimer {
	return t.BeginJob(name, -1)
}

// BeginJob starts a span attributed to one batch job.
func (t *Trace) BeginJob(name string, job int) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, name: name, job: job, t0: time.Now()}
}

// End records the span.
func (s SpanTimer) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(s.name, s.job, s.t0, time.Since(s.t0))
}

// Finish seals the trace with the response status and total wall-clock
// cost. Spans may still be attached afterwards (async job execution);
// only the ID freezes.
func (t *Trace) Finish(status int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.duration = d
	t.finished = true
	t.mu.Unlock()
}

// TraceData is a trace's JSON rendering — the /debug/traces wire shape.
type TraceData struct {
	ID     string    `json:"id"`
	Route  string    `json:"route"`
	Codec  string    `json:"codec"`
	Start  time.Time `json:"start"`
	Status int       `json:"status"`
	// DurationMS is the request's total wall-clock cost; zero until the
	// trace is finished.
	DurationMS float64 `json:"duration_ms"`
	// Spans is the recorded breakdown. Top-level spans sum to ≈
	// DurationMS; "stage:*" spans nest inside "compile" (see package doc).
	Spans []SpanData `json:"spans"`
	// DroppedSpans counts spans lost to the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// SpanData is a span's JSON rendering.
type SpanData struct {
	Name string `json:"name"`
	// Job is the batch job index, or -1 for request-level spans.
	Job        int     `json:"job"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// Snapshot clones the trace's current state for rendering.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceData{
		ID:           t.id,
		Route:        t.route,
		Codec:        t.codec,
		Start:        t.start,
		Status:       t.status,
		DurationMS:   ms(t.duration),
		Spans:        make([]SpanData, len(t.spans)),
		DroppedSpans: t.dropped,
	}
	for i, sp := range t.spans {
		d.Spans[i] = SpanData{Name: sp.Name, Job: sp.Job, StartMS: ms(sp.Start), DurationMS: ms(sp.Duration)}
	}
	return d
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// SpanSummary renders the span set as one deterministic line
// ("decode=0.021ms compile=1.302ms ...", batch jobs tagged
// "compile[3]=..."), the shape the slow-trace log prints — tests pin
// that /debug/traces/{id} and the log describe the same spans.
func (d TraceData) SpanSummary() string {
	var b strings.Builder
	for i, sp := range d.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Name)
		if sp.Job >= 0 {
			b.WriteByte('[')
			b.WriteString(strconv.Itoa(sp.Job))
			b.WriteByte(']')
		}
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(sp.DurationMS, 'f', 3, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// ctxKey keys the trace in a request context.
type ctxKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — and every Trace
// method tolerates nil, so callers need no presence check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Recorder keeps the most recent finished traces in a fixed ring and
// emits the slow-trace log. One mutex guards the ring: inserts are one
// per HTTP request (not per compile), so contention is negligible even
// at batched-storm request rates.
type Recorder struct {
	mu   sync.Mutex
	ring []*Trace // capacity-sized; nil slots until the ring fills
	next int
	byID map[string]*Trace
	slow time.Duration
	log  *slog.Logger
}

// NewRecorder returns a recorder keeping the last size traces and
// logging any trace at or over slow via logger (slow ≤ 0 disables the
// log; a nil logger means slog.Default).
func NewRecorder(size int, slow time.Duration, logger *slog.Logger) *Recorder {
	if size < 1 {
		size = 1
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Recorder{
		ring: make([]*Trace, size),
		byID: make(map[string]*Trace, size),
		slow: slow,
		log:  logger,
	}
}

// Record adds a finished trace to the ring (evicting the oldest) and
// emits the slow-trace log line when the trace crossed the threshold.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	// Only the ID and duration are needed up front; the full span
	// snapshot is deferred to the slow-log path so the storm-path ring
	// insert never copies a big batch trace's span list.
	t.mu.Lock()
	id, dur := t.id, t.duration
	t.mu.Unlock()
	r.mu.Lock()
	if old := r.ring[r.next]; old != nil {
		// Only unmap the slot's own ID: a duplicate client-supplied ID may
		// have re-mapped it to a newer trace already.
		if r.byID[old.ID()] == old {
			delete(r.byID, old.ID())
		}
	}
	r.ring[r.next] = t
	r.byID[id] = t
	r.next = (r.next + 1) % len(r.ring)
	r.mu.Unlock()

	if r.slow > 0 && dur >= r.slow {
		snap := t.Snapshot()
		r.log.Warn("slow trace",
			"trace", snap.ID,
			"route", snap.Route,
			"codec", snap.Codec,
			"status", snap.Status,
			"duration_ms", snap.DurationMS,
			"spans", snap.SpanSummary(),
		)
	}
}

// Get returns the identified trace's current snapshot.
func (r *Recorder) Get(id string) (TraceData, bool) {
	r.mu.Lock()
	t, ok := r.byID[id]
	r.mu.Unlock()
	if !ok {
		return TraceData{}, false
	}
	return t.Snapshot(), true
}

// Recent returns up to n traces, newest first. n ≤ 0 returns the whole
// ring.
func (r *Recorder) Recent(n int) []TraceData {
	r.mu.Lock()
	size := len(r.ring)
	if n <= 0 || n > size {
		n = size
	}
	picked := make([]*Trace, 0, n)
	for i := 1; i <= size && len(picked) < n; i++ {
		if t := r.ring[(r.next-i+size)%size]; t != nil {
			picked = append(picked, t)
		}
	}
	r.mu.Unlock()
	out := make([]TraceData, len(picked))
	for i, t := range picked {
		out[i] = t.Snapshot()
	}
	return out
}
