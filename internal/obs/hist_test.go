package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 5, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 1e6, 1e9, 1e12} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
	// Every value falls in the bucket whose midpoint approximates it.
	for v := int64(1); v < 1<<40; v = v*3 + 1 {
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		if relErr := math.Abs(float64(mid-v)) / float64(v); relErr > 1.0/subBuckets {
			t.Fatalf("bucketMid(bucketIndex(%d)) = %d, relative error %.3f > %.3f",
				v, mid, relErr, 1.0/subBuckets)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zero")
	}
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs within bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		tol := float64(want) / subBuckets * 2 // bucket width + rank rounding
		if math.Abs(float64(got-want)) > tol {
			t.Errorf("Quantile(%g) = %v, want %v ± %v", q, got, want, time.Duration(tol))
		}
	}
	check(0.5, 500*time.Microsecond)
	check(0.9, 900*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	check(0.999, 999*time.Microsecond)
	if h.Min() != time.Microsecond {
		t.Errorf("Min = %v, want 1µs", h.Min())
	}
	if h.Max() != time.Millisecond {
		t.Errorf("Max = %v, want 1ms", h.Max())
	}
	if mean := h.Mean(); mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", mean)
	}
	// Quantile extremes clamp to the recorded range.
	if h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max() {
		t.Errorf("quantile extremes escape [min, max]: %v %v", h.Quantile(0), h.Quantile(1))
	}
}

// TestHistogramSkewed: quantiles stay within bucket error on a heavily
// skewed distribution (the shape real latency storms produce).
func TestHistogramSkewed(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1_000_000)) * time.Nanosecond
		if i%100 == 0 {
			d *= 1000 // 1% slow tail
		}
		h.Record(d)
	}
	if p50, p999 := h.Quantile(0.5), h.Quantile(0.999); p999 < 100*p50 {
		t.Errorf("tail invisible: p50=%v p999=%v", p50, p999)
	}
	if h.Quantile(0.5) > h.Quantile(0.9) || h.Quantile(0.9) > h.Quantile(0.99) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record mishandled: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}
