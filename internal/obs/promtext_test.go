package obs

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP mpschedd_compiles_total Compile attempts.
# TYPE mpschedd_compiles_total counter
mpschedd_compiles_total 42

# TYPE mpschedd_requests_total counter
mpschedd_requests_total{route="POST /v1/compile"} 30
mpschedd_requests_total{route="GET /healthz"} 12
mpschedd_request_seconds{route="POST /v1/compile",codec="json",quantile="0.5"} 0.0012
mpschedd_uptime_seconds 3.5
escaped{msg="say \"hi\",\\ok"} 1
`

func TestParseMetrics(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 {
		t.Fatalf("parsed %d samples, want 6", len(m))
	}

	if v, ok := m.Value("mpschedd_compiles_total"); !ok || v != 42 {
		t.Errorf("compiles_total = %g, %v", v, ok)
	}
	if v, ok := m.Value("mpschedd_requests_total", "route", "GET /healthz"); !ok || v != 12 {
		t.Errorf("requests_total{healthz} = %g, %v", v, ok)
	}
	if v, ok := m.Value("mpschedd_request_seconds", "route", "POST /v1/compile", "codec", "json", "quantile", "0.5"); !ok || v != 0.0012 {
		t.Errorf("request_seconds p50 = %g, %v", v, ok)
	}
	// Partial label match: the first sample with the given labels wins.
	if v, ok := m.Value("mpschedd_requests_total"); !ok || v != 30 {
		t.Errorf("first requests_total = %g, %v", v, ok)
	}
	if _, ok := m.Value("mpschedd_requests_total", "route", "nope"); ok {
		t.Error("matched a route that is not exposed")
	}
	if v, ok := m.Value("escaped", "msg", `say "hi",\ok`); !ok || v != 1 {
		t.Errorf("escaped label value not decoded: %g, %v", v, ok)
	}

	if got := m.Sum("mpschedd_requests_total"); got != 42 {
		t.Errorf("Sum(requests_total) = %g, want 42", got)
	}
	fams := m.Families()
	want := []string{"escaped", "mpschedd_compiles_total", "mpschedd_request_seconds", "mpschedd_requests_total", "mpschedd_uptime_seconds"}
	if len(fams) != len(want) {
		t.Fatalf("Families = %v, want %v", fams, want)
	}
	for i := range fams {
		if fams[i] != want[i] {
			t.Fatalf("Families = %v, want %v", fams, want)
		}
	}
}

func TestParseMetricsMalformed(t *testing.T) {
	for _, bad := range []string{
		"noval",
		`broken{route="x" 3`,
		`broken{route=x} 3`,
		"name not-a-number",
		`{onlylabels="x"} 1`,
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted a malformed line", bad)
		}
	}
}
