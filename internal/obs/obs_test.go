package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	for _, id := range []string{a, b} {
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("id %q is not lowercase hex", id)
		}
	}
	if a == b {
		t.Errorf("two draws produced the same id %q", a)
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := NewTrace("my-id", "POST /v1/compile", "json")
	if tr.ID() != "my-id" {
		t.Fatalf("ID = %q, want my-id", tr.ID())
	}
	tr.Observe("decode", -1, time.Now(), 50*time.Microsecond)
	st := tr.BeginJob("compile", 3)
	st.End()
	tr.Finish(200, 2*time.Millisecond)

	d := tr.Snapshot()
	if d.ID != "my-id" || d.Route != "POST /v1/compile" || d.Codec != "json" || d.Status != 200 {
		t.Errorf("snapshot header wrong: %+v", d)
	}
	if d.DurationMS != 2 {
		t.Errorf("DurationMS = %g, want 2", d.DurationMS)
	}
	if len(d.Spans) != 2 || d.Spans[0].Name != "decode" || d.Spans[1].Name != "compile" {
		t.Fatalf("spans = %+v", d.Spans)
	}
	if d.Spans[0].Job != -1 || d.Spans[1].Job != 3 {
		t.Errorf("span jobs = %d, %d; want -1, 3", d.Spans[0].Job, d.Spans[1].Job)
	}

	// Post-finish appends are allowed (async jobs), but the ID is frozen.
	tr.Observe("queue_wait", -1, time.Now(), time.Millisecond)
	tr.AdoptID("other")
	d = tr.Snapshot()
	if len(d.Spans) != 3 {
		t.Errorf("post-finish span not recorded: %d spans", len(d.Spans))
	}
	if d.ID != "my-id" {
		t.Errorf("AdoptID after Finish changed the ID to %q", d.ID)
	}
}

func TestTraceIDValidation(t *testing.T) {
	if id := NewTrace("", "r", "c").ID(); len(id) != 16 {
		t.Errorf("empty client id not replaced: %q", id)
	}
	long := strings.Repeat("x", MaxTraceIDLen+1)
	if id := NewTrace(long, "r", "c").ID(); id == long {
		t.Error("over-long client id was stored")
	}
	tr := NewTrace("", "r", "c")
	tr.AdoptID(long)
	if tr.ID() == long {
		t.Error("AdoptID accepted an over-long id")
	}
	tr.AdoptID("framed")
	if tr.ID() != "framed" {
		t.Errorf("AdoptID before Finish: ID = %q, want framed", tr.ID())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil ID not empty")
	}
	tr.AdoptID("x")
	tr.Observe("decode", -1, time.Now(), time.Millisecond)
	tr.Begin("compile").End()
	tr.Finish(200, time.Millisecond)
	if d := tr.Snapshot(); len(d.Spans) != 0 {
		t.Errorf("nil snapshot has spans: %+v", d)
	}
	var r *Recorder
	r.Record(tr) // must not panic
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("", "r", "c")
	for i := 0; i < maxSpansPerTrace+7; i++ {
		tr.Observe("s", -1, time.Now(), time.Microsecond)
	}
	d := tr.Snapshot()
	if len(d.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want %d", len(d.Spans), maxSpansPerTrace)
	}
	if d.DroppedSpans != 7 {
		t.Errorf("dropped = %d, want 7", d.DroppedSpans)
	}
}

func TestSpanSummary(t *testing.T) {
	d := TraceData{Spans: []SpanData{
		{Name: "decode", Job: -1, DurationMS: 0.021},
		{Name: "compile", Job: 3, DurationMS: 1.302},
	}}
	got := d.SpanSummary()
	want := "decode=0.021ms compile[3]=1.302ms"
	if got != want {
		t.Errorf("SpanSummary = %q, want %q", got, want)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context returned a trace")
	}
	tr := NewTrace("", "r", "c")
	if FromContext(WithTrace(context.Background(), tr)) != tr {
		t.Error("trace did not round-trip through the context")
	}
}

func finished(id string, d time.Duration) *Trace {
	tr := NewTrace(id, "POST /v1/compile", "json")
	tr.Observe("compile", -1, time.Now(), d)
	tr.Finish(200, d)
	return tr
}

func TestRecorderRingAndLookup(t *testing.T) {
	r := NewRecorder(2, -1, nil)
	r.Record(finished("t1", time.Millisecond))
	r.Record(finished("t2", time.Millisecond))
	r.Record(finished("t3", time.Millisecond)) // evicts t1

	if _, ok := r.Get("t1"); ok {
		t.Error("evicted trace t1 still retrievable")
	}
	for _, id := range []string{"t2", "t3"} {
		if d, ok := r.Get(id); !ok || d.ID != id {
			t.Errorf("Get(%s) = %+v, %v", id, d, ok)
		}
	}
	recent := r.Recent(10)
	if len(recent) != 2 || recent[0].ID != "t3" || recent[1].ID != "t2" {
		t.Errorf("Recent = %+v, want [t3 t2]", recent)
	}
	if one := r.Recent(1); len(one) != 1 || one[0].ID != "t3" {
		t.Errorf("Recent(1) = %+v, want [t3]", one)
	}
}

// A duplicate client-supplied ID re-maps the index to the newer trace;
// evicting the older slot must not unmap the newer one.
func TestRecorderDuplicateID(t *testing.T) {
	r := NewRecorder(2, -1, nil)
	r.Record(finished("dup", time.Millisecond))
	second := finished("dup", 2*time.Millisecond)
	r.Record(second)
	r.Record(finished("other", time.Millisecond)) // evicts the first "dup" slot

	d, ok := r.Get("dup")
	if !ok {
		t.Fatal("dup unmapped by eviction of the older duplicate")
	}
	if d.DurationMS != 2 {
		t.Errorf("Get(dup) returned the older trace: %+v", d)
	}
}

func TestRecorderSlowLog(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(4, time.Millisecond, slog.New(slog.NewTextHandler(&buf, nil)))

	r.Record(finished("fast01", 100*time.Microsecond))
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %s", buf.String())
	}
	r.Record(finished("slow01", 5*time.Millisecond))
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, "trace=slow01") {
		t.Errorf("slow log missing trace line: %q", out)
	}
	if !strings.Contains(out, "compile=5.000ms") {
		t.Errorf("slow log missing span breakdown: %q", out)
	}
}
