package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the reader side of the Prometheus text exposition:
// just enough to let mpschedbench (and tests) scrape a daemon's /metrics,
// diff two scrapes around a run, and assert internal consistency — without
// any dependency on a metrics library.

// Sample is one exposed metric sample: a family name, its sorted label
// pairs, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is one scrape's sample set.
type Metrics []Sample

// ParseMetrics reads a Prometheus text exposition. Comment lines (# HELP,
// # TYPE) and blank lines are skipped; malformed sample lines are an
// error, so a truncated or interleaved scrape under load is caught, not
// silently half-parsed.
func ParseMetrics(r io.Reader) (Metrics, error) {
	var out Metrics
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(text string) (Sample, error) {
	var s Sample
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, text)
		}
		s.Labels = labels
		rest = rest[end+1:]
	} else if i := strings.IndexAny(rest, " \t"); i >= 0 {
		s.Name = rest[:i]
		rest = rest[i:]
	} else {
		return s, fmt.Errorf("no value in %q", text)
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", text)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", text, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"`. Values are Go-quoted strings (the
// exposition format's escaping is a subset of Go's), so strconv.Unquote
// handles \" and \\ and \n.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value: %w", err)
		}
		labels[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	if len(labels) == 0 {
		return nil, nil
	}
	return labels, nil
}

// Value returns the sample matching name and all given label pairs
// (passed as k1, v1, k2, v2, ...). Extra labels on the sample do not
// disqualify it; the first match wins. ok is false when nothing matches.
func (m Metrics) Value(name string, kv ...string) (float64, bool) {
	if len(kv)%2 != 0 {
		panic("obs.Metrics.Value: odd label key/value list")
	}
	for _, s := range m {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum totals every sample of the named family, across all label sets.
func (m Metrics) Sum(name string) float64 {
	var total float64
	for _, s := range m {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// Families returns the distinct metric names present, sorted.
func (m Metrics) Families() []string {
	seen := map[string]bool{}
	for _, s := range m {
		seen[s.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
