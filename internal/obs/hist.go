package obs

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values are
// bucketed into 16 linear sub-buckets per power of two, giving a worst-case
// quantile error of 1/16 (~6%) at any magnitude from nanoseconds to hours,
// in a few kilobytes, with O(1) recording and no allocation after warm-up.
// The zero value is ready to use. Not goroutine-safe — wrap in
// LockedHistogram (the server's /metrics path) or serialise access (the
// loadgen collector).
type Histogram struct {
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// subBucketBits fixes the resolution: 2^4 = 16 sub-buckets per power of
// two. Raising it trades memory for tighter quantiles.
const subBucketBits = 4

const subBuckets = 1 << subBucketBits // 16

// bucketIndex maps a non-negative value to its bucket. Values below
// subBuckets map linearly (exact); above, the top subBucketBits+1
// significant bits select the bucket. Indices are contiguous and monotone.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	// Shift v so its top bits land in [subBuckets, 2*subBuckets); e counts
	// the discarded low bits. For v in [16,32) e=0 and the index equals v.
	e := bits.Len64(uint64(v)) - (subBucketBits + 1)
	return int(e<<subBucketBits) + int(v>>uint(e))
}

// bucketMid returns a representative value (the bucket's midpoint) for the
// given index — the value quantiles report.
func bucketMid(idx int) int64 {
	if idx < 2*subBuckets {
		return int64(idx)
	}
	e := idx>>subBucketBits - 1
	base := int64(idx&(subBuckets-1)|subBuckets) << uint(e)
	return base + int64(1)<<uint(e)/2
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max return the exact extremes (not bucket midpoints).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the exact arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns the latency at quantile q in [0, 1] — Quantile(0.99) is
// the p99. The answer is a bucket midpoint clamped to the recorded
// [min, max], so it is within one bucket width (≤ ~6%) of the true value.
// Returns 0 when nothing was recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: ceil(q·count), min 1.
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMid(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// clone copies the histogram (counts included).
func (h *Histogram) clone() Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// LockedHistogram is a Histogram behind its own mutex: O(1) lock-then-
// record on the request path, snapshot-then-render at scrape time. This is
// the server-side variant; it replaces mpschedd's old 2048-sample
// sort-at-scrape reservoir with full-history quantiles at fixed memory.
type LockedHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Record adds one observation.
func (l *LockedHistogram) Record(d time.Duration) {
	l.mu.Lock()
	l.h.Record(d)
	l.mu.Unlock()
}

// Snapshot returns a private copy for lock-free reads (quantiles, sums).
func (l *LockedHistogram) Snapshot() Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.clone()
}
