package patsel

import (
	"testing"

	"mpsched/internal/sched"
	"mpsched/internal/workloads"
)

func TestExhaustiveNeverWorseThanGreedy(t *testing.T) {
	g := workloads.ThreeDFT()
	for _, pdef := range []int{1, 2} {
		cfg := Config{C: 5, Pdef: pdef, MaxSpan: 1}
		_, exhaustive, err := Exhaustive(g, cfg, sched.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Select(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := sched.MultiPattern(g, sel.Patterns, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if exhaustive.Length() > greedy.Length() {
			t.Errorf("pdef=%d: exhaustive %d worse than greedy %d",
				pdef, exhaustive.Length(), greedy.Length())
		}
		t.Logf("pdef=%d: greedy=%d exhaustive=%d (gap %d)",
			pdef, greedy.Length(), exhaustive.Length(), greedy.Length()-exhaustive.Length())
	}
}

func TestExhaustiveFig4(t *testing.T) {
	g := workloads.Fig4Small()
	ps, s, err := Exhaustive(g, Config{C: 2, Pdef: 2, MaxSpan: SpanUnlimited}, sched.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if !ps.CoversColors(g.Colors()) {
		t.Errorf("exhaustive set %s misses colors", ps)
	}
	// The greedy choice {aa},{bb} schedules Fig. 4 in 3 cycles; the
	// exhaustive optimum cannot beat the 3-cycle critical path.
	if s.Length() != 3 {
		t.Errorf("exhaustive = %d cycles, want 3 (critical path)", s.Length())
	}
}

func TestExhaustiveFallsBackToSynthesis(t *testing.T) {
	// Pdef=1 on Fig. 4: no candidate class covers both colors, so the
	// fallback must return the synthesised {ab}.
	g := workloads.Fig4Small()
	ps, s, err := Exhaustive(g, Config{C: 2, Pdef: 1, MaxSpan: SpanUnlimited}, sched.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.At(0).Key() != "a,b" {
		t.Errorf("fallback pattern %s, want {a,b}", ps.At(0))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveComboCap(t *testing.T) {
	g := workloads.ThreeDFT()
	if _, _, err := Exhaustive(g, Config{C: 5, Pdef: 4, MaxSpan: 2}, sched.Options{}, 10); err == nil {
		t.Error("combo cap not enforced")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {4, 5, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}
