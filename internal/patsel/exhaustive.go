package patsel

import (
	"fmt"
	"sort"

	"mpsched/internal/antichain"
	"mpsched/internal/dfg"
	"mpsched/internal/pattern"
	"mpsched/internal/sched"
)

// Exhaustive searches every Pdef-subset of the candidate pattern classes
// (those covering the graph's colors) and returns the set whose
// multi-pattern schedule is shortest — the brute-force optimum over the
// same candidate pool the greedy selection draws from. It exists to
// measure the greedy algorithm's optimality gap on small inputs; the
// number of evaluated subsets is capped by maxCombos (default 200k).
func Exhaustive(d *dfg.Graph, cfg Config, opts sched.Options, maxCombos int) (*pattern.Set, *sched.Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Pdef < 1 {
		return nil, nil, fmt.Errorf("patsel: Pdef %d < 1", cfg.Pdef)
	}
	if maxCombos <= 0 {
		maxCombos = 200_000
	}
	res, err := antichain.Enumerate(d, antichain.Config{MaxSize: cfg.C, MaxSpan: cfg.MaxSpan})
	if err != nil {
		return nil, nil, err
	}
	var pool []pattern.Pattern
	for _, cl := range res.Classes {
		pool = append(pool, cl.Pattern)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].Key() < pool[j].Key() })

	combos := binomial(len(pool), cfg.Pdef)
	if combos > maxCombos {
		return nil, nil, fmt.Errorf("patsel: %d candidate subsets exceed cap %d (pool %d, Pdef %d)",
			combos, maxCombos, len(pool), cfg.Pdef)
	}

	colors := d.Colors()
	var bestSet *pattern.Set
	var bestSched *sched.Schedule

	idx := make([]int, cfg.Pdef)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == cfg.Pdef {
			ps := pattern.NewSet()
			for _, i := range idx {
				ps.Add(pool[i])
			}
			if !ps.CoversColors(colors) {
				return
			}
			s, err := sched.MultiPattern(d, ps, opts)
			if err != nil {
				return
			}
			if bestSched == nil || s.Length() < bestSched.Length() {
				bestSet, bestSched = ps, s
			}
			return
		}
		for i := start; i <= len(pool)-(cfg.Pdef-pos); i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	if cfg.Pdef <= len(pool) {
		rec(0, 0)
	}
	if bestSched == nil {
		// No subset covers the colors (e.g. Fig. 4 with Pdef=1): fall
		// back to the greedy algorithm, whose synthesis step handles it.
		sel, err := Select(d, cfg)
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.MultiPattern(d, sel.Patterns, opts)
		if err != nil {
			return nil, nil, err
		}
		return sel.Patterns, s, nil
	}
	return bestSet, bestSched, nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1
	for i := 0; i < k; i++ {
		out = out * (n - i) / (i + 1)
		if out < 0 || out > 1<<40 {
			return 1 << 40 // saturate
		}
	}
	return out
}
