// Package patsel implements the paper's contribution: selecting the Pdef
// patterns handed to the multi-pattern scheduler (§5, Figs. 6–7).
//
// Candidates are the patterns of the DFG's bounded-span antichains
// (package antichain). Patterns are chosen greedily by the priority
//
//	f(p̄ⱼ) = Σ_n h(p̄ⱼ,n) / (Σ_{p̄ᵢ∈Ps} h(p̄ᵢ,n) + ε)  +  α·|p̄ⱼ|²     (Eq. 8)
//
// subject to the color number condition (inequality 9); after each choice
// the subpatterns of the winner are deleted, and when no candidate
// qualifies a pattern is synthesised from uncovered colors.
package patsel

import (
	"fmt"
	"sort"

	"mpsched/internal/antichain"
	"mpsched/internal/dfg"
	"mpsched/internal/pattern"
)

// Config parameterises Select. Zero values take the paper's defaults where
// the paper names one (ε = 0.5, α = 20, C = 5).
type Config struct {
	// C is the number of reconfigurable resources (pattern capacity).
	// Default 5 (the Montium).
	C int
	// Pdef is how many patterns to select. Must be ≥ 1.
	Pdef int
	// MaxSpan bounds the span of enumerated antichains; negative means
	// unlimited. Default (zero value) is treated as span ≤ 1, the
	// operating point §5.1 recommends. Use SpanUnlimited for no bound.
	MaxSpan int
	// Epsilon is the ε of Eq. 8 (default 0.5).
	Epsilon float64
	// Alpha is the α of Eq. 8 (default 20).
	Alpha float64

	// Ablation switches (all false = the paper's algorithm).

	// DisableBalance replaces the balance denominator with 1, i.e. scores
	// raw antichain frequency.
	DisableBalance bool
	// DisableSizeBonus drops the α·|p̄|² term.
	DisableSizeBonus bool
	// DisableColorCondition skips inequality (9); selection may then fail
	// to cover all colors.
	DisableColorCondition bool
	// DisableSubpatternDeletion keeps subpatterns of selected patterns as
	// candidates.
	DisableSubpatternDeletion bool
}

// SpanUnlimited disables the span bound in Config.MaxSpan.
const SpanUnlimited = -1

// WithDefaults returns the config with zero-valued fields replaced by the
// paper's defaults (C = 5, span ≤ 1, ε = 0.5, α = 20) — the normalisation
// Select applies internally, exported so callers that precompute the
// antichain census (package pipeline) agree on the effective parameters.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 5
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 20
	}
	return c
}

// Step logs one iteration of the selection loop.
type Step struct {
	// Chosen is the pattern selected this round.
	Chosen pattern.Pattern
	// Priority is the winning f(p̄) value (0 for synthesised patterns).
	Priority float64
	// Synthesized is true when no candidate had nonzero priority and the
	// pattern was built from uncovered colors (Fig. 7 line 3).
	Synthesized bool
	// Priorities holds f(p̄) for every candidate considered this round,
	// keyed by canonical pattern key (zero = failed the color condition).
	Priorities map[string]float64
	// Deleted lists the candidate keys removed as subpatterns of Chosen.
	Deleted []string
}

// Selection is the result of Select.
type Selection struct {
	Patterns *pattern.Set
	Steps    []Step
	// Enumerated is the antichain census backing the candidate pool.
	Enumerated *antichain.Result
}

// Select runs the paper's pattern selection algorithm on the graph.
func Select(d *dfg.Graph, cfg Config) (*Selection, error) {
	cfg = cfg.withDefaults()
	if cfg.Pdef < 1 {
		return nil, fmt.Errorf("patsel: Pdef %d < 1", cfg.Pdef)
	}
	if cfg.C < 1 {
		return nil, fmt.Errorf("patsel: C %d < 1", cfg.C)
	}
	res, err := antichain.Enumerate(d, antichain.Config{MaxSize: cfg.C, MaxSpan: cfg.MaxSpan})
	if err != nil {
		return nil, err
	}
	return selectFrom(d, res, cfg)
}

// SelectFrom runs the selection loop over a pre-computed antichain census,
// letting callers amortise enumeration across many Pdef values. The census
// must have been produced by antichain.Enumerate with MaxSize = cfg.C and
// the span limit the caller wants; it is read, never mutated.
func SelectFrom(d *dfg.Graph, res *antichain.Result, cfg Config) (*Selection, error) {
	cfg = cfg.withDefaults()
	if cfg.Pdef < 1 {
		return nil, fmt.Errorf("patsel: Pdef %d < 1", cfg.Pdef)
	}
	if res == nil {
		return nil, fmt.Errorf("patsel: nil antichain census")
	}
	if res.NodeCount != d.N() {
		return nil, fmt.Errorf("patsel: census covers %d nodes, graph has %d", res.NodeCount, d.N())
	}
	return selectFrom(d, res, cfg)
}

// selectFrom is the selection loop proper, reusable with a pre-computed
// antichain census.
func selectFrom(d *dfg.Graph, res *antichain.Result, cfg Config) (*Selection, error) {
	cfg = cfg.withDefaults()
	n := d.N()
	completeColors := d.Colors() // the paper's L

	// Candidate pool: the census's dense per-pattern-id class list, put in
	// canonical pattern order so iteration matches the historical
	// sorted-string-key order without materialising keys for the sort.
	// The keys themselves are built once per candidate — the exported
	// Step.Priorities/Deleted fields are keyed by them.
	type candidate struct {
		key   string
		class *antichain.Class
	}
	classes := res.ClassList()
	sort.Slice(classes, func(i, j int) bool {
		return classes[i].Pattern.Compare(classes[j].Pattern) < 0
	})
	pool := make([]candidate, len(classes))
	for i, cl := range classes {
		pool[i] = candidate{cl.Pattern.Key(), cl}
	}
	alive := make([]bool, len(pool))
	for i := range alive {
		alive[i] = true
	}

	selected := pattern.NewSet()
	coveredFreq := make([]float64, n) // Σ_{p̄ᵢ∈Ps} h(p̄ᵢ, n)
	coveredColors := map[dfg.Color]bool{}
	sel := &Selection{Patterns: selected, Enumerated: res}

	for round := 0; round < cfg.Pdef; round++ {
		// Minimum new colors the next pattern must contribute (ineq. 9):
		// |L| − |Ls| − C·(Pdef − |Ps| − 1).
		uncovered := 0
		for _, c := range completeColors {
			if !coveredColors[c] {
				uncovered++
			}
		}
		minNew := uncovered - cfg.C*(cfg.Pdef-selected.Len()-1)

		step := Step{Priorities: map[string]float64{}}
		bestIdx := -1
		bestPrio := 0.0
		for i, cand := range pool {
			if !alive[i] {
				continue
			}
			prio := 0.0
			if cfg.DisableColorCondition || newColorCount(cand.class.Pattern, coveredColors) >= minNew {
				prio = priorityOf(cand.class, coveredFreq, cfg)
			}
			step.Priorities[cand.key] = prio
			if prio <= 0 {
				continue
			}
			if bestIdx < 0 || betterCandidate(prio, cand.class.Pattern, bestPrio, pool[bestIdx].class.Pattern) {
				bestIdx = i
				bestPrio = prio
			}
		}

		var chosen pattern.Pattern
		if bestIdx >= 0 {
			chosen = pool[bestIdx].class.Pattern
			step.Chosen = chosen
			step.Priority = bestPrio
			for nd := 0; nd < n; nd++ {
				coveredFreq[nd] += float64(pool[bestIdx].class.NodeFreq[nd])
			}
		} else {
			// Fig. 7 line 3: synthesise a pattern from up to C uncovered
			// colors. If everything is covered and no candidate remains,
			// selection stops early: extra patterns would be redundant.
			var missing []dfg.Color
			for _, c := range completeColors {
				if !coveredColors[c] {
					missing = append(missing, c)
				}
			}
			if len(missing) == 0 {
				if !anyAlive(alive) {
					break
				}
				// Candidates remain but all fail the color condition with
				// everything covered — impossible, since minNew ≤ 0 then.
				return nil, fmt.Errorf("patsel: internal error, no choice with colors covered")
			}
			if len(missing) > cfg.C {
				missing = missing[:cfg.C]
			}
			chosen = pattern.New(missing...)
			step.Chosen = chosen
			step.Synthesized = true
		}

		if !selected.Add(chosen) {
			return nil, fmt.Errorf("patsel: internal error, duplicate selection %s", chosen)
		}
		for _, c := range chosen.Colors() {
			coveredColors[c] = true
		}
		if !cfg.DisableSubpatternDeletion {
			for i, cand := range pool {
				if alive[i] && cand.class.Pattern.SubpatternOf(chosen) {
					alive[i] = false
					step.Deleted = append(step.Deleted, cand.key)
				}
			}
		} else if bestIdx >= 0 {
			alive[bestIdx] = false
			step.Deleted = append(step.Deleted, pool[bestIdx].key)
		}
		sel.Steps = append(sel.Steps, step)
	}
	return sel, nil
}

// priorityOf evaluates Eq. 8 for one candidate class.
func priorityOf(cl *antichain.Class, coveredFreq []float64, cfg Config) float64 {
	sum := 0.0
	for nd, h := range cl.NodeFreq {
		if h == 0 {
			continue
		}
		if cfg.DisableBalance {
			sum += float64(h)
		} else {
			sum += float64(h) / (coveredFreq[nd] + cfg.Epsilon)
		}
	}
	if !cfg.DisableSizeBonus {
		size := float64(cl.Pattern.Size())
		sum += cfg.Alpha * size * size
	}
	return sum
}

// betterCandidate orders candidates: higher priority wins; ties prefer the
// larger pattern (more parallelism for free), then the smaller canonical
// key — all deterministic, since the paper picks arbitrarily.
func betterCandidate(prio float64, p pattern.Pattern, bestPrio float64, best pattern.Pattern) bool {
	if prio != bestPrio {
		return prio > bestPrio
	}
	if p.Size() != best.Size() {
		return p.Size() > best.Size()
	}
	return p.Key() < best.Key()
}

func newColorCount(p pattern.Pattern, covered map[dfg.Color]bool) int {
	cnt := 0
	for _, c := range p.DistinctColors() {
		if !covered[c] {
			cnt++
		}
	}
	return cnt
}

func anyAlive(alive []bool) bool {
	for _, a := range alive {
		if a {
			return true
		}
	}
	return false
}
