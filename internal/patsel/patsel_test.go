package patsel

import (
	"math"
	"math/rand"
	"testing"

	"mpsched/internal/dfg"
	"mpsched/internal/sched"
	"mpsched/internal/workloads"
)

// fig4Config is the paper's worked example setting: C=2, ε=0.5, α=20,
// unlimited span (the example enumerates all antichains).
func fig4Config(pdef int) Config {
	return Config{C: 2, Pdef: pdef, MaxSpan: SpanUnlimited, Epsilon: 0.5, Alpha: 20}
}

// §5.2's worked example, first round: f(p̄1)=26, f(p̄2)=24, f(p̄3)=88,
// f(p̄4)=84; p̄3 = {aa} wins and deletes its subpattern {a}. Second round:
// f(p̄2)=24, f(p̄4)=84 (unchanged — balance at work); p̄4 = {bb} wins.
func TestFig4WorkedExample(t *testing.T) {
	g := workloads.Fig4Small()
	sel, err := Select(g, fig4Config(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(sel.Steps))
	}

	round1 := sel.Steps[0].Priorities
	wantR1 := map[string]float64{"a": 26, "b": 24, "a,a": 88, "b,b": 84}
	for key, want := range wantR1 {
		if got := round1[key]; math.Abs(got-want) > 1e-9 {
			t.Errorf("round 1 f(%s) = %v, want %v", key, got, want)
		}
	}
	if sel.Steps[0].Chosen.Key() != "a,a" {
		t.Errorf("round 1 chose %s, want {a,a}", sel.Steps[0].Chosen)
	}
	// {a} and {aa} itself disappear from the pool.
	deleted := map[string]bool{}
	for _, k := range sel.Steps[0].Deleted {
		deleted[k] = true
	}
	if !deleted["a"] || !deleted["a,a"] {
		t.Errorf("subpattern deletion wrong: %v", sel.Steps[0].Deleted)
	}

	round2 := sel.Steps[1].Priorities
	wantR2 := map[string]float64{"b": 24, "b,b": 84}
	for key, want := range wantR2 {
		if got := round2[key]; math.Abs(got-want) > 1e-9 {
			t.Errorf("round 2 f(%s) = %v, want %v", key, got, want)
		}
	}
	if sel.Steps[1].Chosen.Key() != "b,b" {
		t.Errorf("round 2 chose %s, want {b,b}", sel.Steps[1].Chosen)
	}
	if sel.Patterns.String() != "{a,a} {b,b}" {
		t.Errorf("selected %s", sel.Patterns)
	}
}

// §5.2 continued: with Pdef = 1 no candidate satisfies the color condition
// (every candidate has a single color; two new colors are required), so the
// algorithm synthesises {ab}.
func TestFig4Pdef1SynthesisesAB(t *testing.T) {
	g := workloads.Fig4Small()
	sel, err := Select(g, fig4Config(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Steps) != 1 || !sel.Steps[0].Synthesized {
		t.Fatalf("expected one synthesised step, got %+v", sel.Steps)
	}
	if sel.Steps[0].Chosen.Key() != "a,b" {
		t.Errorf("synthesised %s, want {a,b}", sel.Steps[0].Chosen)
	}
	// All candidate priorities must be zero that round.
	for key, p := range sel.Steps[0].Priorities {
		if p != 0 {
			t.Errorf("candidate %s has nonzero priority %v under Pdef=1", key, p)
		}
	}
}

// Without the α|p̄|² bonus the example's f(p̄2) and f(p̄4) would tie at 4 —
// verify the ablation switch produces exactly that.
func TestSizeBonusAblation(t *testing.T) {
	g := workloads.Fig4Small()
	cfg := fig4Config(2)
	cfg.DisableSizeBonus = true
	sel, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sel.Steps[0].Priorities
	if math.Abs(r1["b"]-4) > 1e-9 || math.Abs(r1["b,b"]-4) > 1e-9 {
		t.Errorf("without size bonus f(b)=%v f(bb)=%v, want 4 and 4", r1["b"], r1["b,b"])
	}
}

func TestSelectionCoversAllColors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g := workloads.RandomColored(rng, workloads.DefaultRandomColoredConfig())
		for pdef := 1; pdef <= 4; pdef++ {
			sel, err := Select(g, Config{C: 5, Pdef: pdef, MaxSpan: 1})
			if err != nil {
				t.Fatalf("trial %d pdef %d: %v", trial, pdef, err)
			}
			if !sel.Patterns.CoversColors(g.Colors()) {
				t.Fatalf("trial %d pdef %d: colors not covered: %s vs %v",
					trial, pdef, sel.Patterns, g.Colors())
			}
			if sel.Patterns.Len() > pdef {
				t.Fatalf("selected %d patterns, Pdef %d", sel.Patterns.Len(), pdef)
			}
		}
	}
}

// Selected pattern sets must always be schedulable — the whole point of the
// color condition.
func TestSelectionIsSchedulable(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		g := workloads.RandomColored(rng, workloads.DefaultRandomColoredConfig())
		sel, err := Select(g, Config{C: 5, Pdef: 2, MaxSpan: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.MultiPattern(g, sel.Patterns, sched.Options{})
		if err != nil {
			t.Fatalf("trial %d: selected patterns unschedulable: %v", trial, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectOn3DFT(t *testing.T) {
	g := workloads.ThreeDFT()
	for pdef := 1; pdef <= 5; pdef++ {
		sel, err := Select(g, Config{C: 5, Pdef: pdef, MaxSpan: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.MultiPattern(g, sel.Patterns, sched.Options{})
		if err != nil {
			t.Fatalf("pdef %d: %v", pdef, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		// The paper's Selected column is 8,7,7,7,6: never worse than 9.
		if s.Length() > 9 {
			t.Errorf("pdef %d: %d cycles, suspiciously long", pdef, s.Length())
		}
	}
}

func TestSelectValidation(t *testing.T) {
	g := workloads.Fig4Small()
	if _, err := Select(g, Config{C: 2, Pdef: 0}); err == nil {
		t.Error("Pdef 0 accepted")
	}
	if _, err := Select(g, Config{C: -1, Pdef: 1}); err == nil {
		t.Error("negative C accepted")
	}
}

func TestSelectStopsEarlyWhenPoolExhausted(t *testing.T) {
	// Two isolated same-color nodes: candidate classes are {a} and {aa}
	// only; with Pdef=5 the pool runs dry after {aa} and selection stops.
	g := dfg.NewGraph("tiny")
	g.MustAddNode(dfg.Node{Name: "x", Color: "a"})
	g.MustAddNode(dfg.Node{Name: "y", Color: "a"})
	sel, err := Select(g, Config{C: 2, Pdef: 5, MaxSpan: SpanUnlimited})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Patterns.Len() == 0 || sel.Patterns.Len() > 2 {
		t.Errorf("selected %s", sel.Patterns)
	}
	if !sel.Patterns.CoversColors(g.Colors()) {
		t.Error("colors not covered")
	}
}

func TestRandomBaselineCoversColors(t *testing.T) {
	g := workloads.ThreeDFT()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		ps, err := Random(g, Config{C: 5, Pdef: 2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ps.CoversColors(g.Colors()) {
			t.Fatalf("random set %s misses colors", ps)
		}
		if ps.Len() != 2 {
			t.Fatalf("random set size %d, want 2", ps.Len())
		}
		for _, p := range ps.Patterns() {
			if p.Size() != 5 {
				t.Fatalf("random pattern %s has size %d, want 5", p, p.Size())
			}
		}
	}
}

func TestRandomBaselineInfeasible(t *testing.T) {
	g := workloads.ThreeDFT() // 3 colors
	rng := rand.New(rand.NewSource(7))
	if _, err := Random(g, Config{C: 1, Pdef: 2}, rng); err == nil {
		t.Error("2 single-slot patterns cannot cover 3 colors; should error")
	}
}

func TestRandomBaselineDeterministic(t *testing.T) {
	g := workloads.ThreeDFT()
	ps1, err := Random(g, Config{C: 5, Pdef: 3}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := Random(g, Config{C: 5, Pdef: 3}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if ps1.String() != ps2.String() {
		t.Errorf("same seed, different sets: %s vs %s", ps1, ps2)
	}
}

func TestGreedyFrequencyAndNodeCoverage(t *testing.T) {
	g := workloads.ThreeDFT()
	for _, f := range []func(*dfg.Graph, Config) (*Selection, error){GreedyFrequency, NodeCoverage} {
		sel, err := f(g, Config{C: 5, Pdef: 3, MaxSpan: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Patterns.CoversColors(g.Colors()) {
			t.Errorf("baseline selection %s misses colors", sel.Patterns)
		}
		s, err := sched.MultiPattern(g, sel.Patterns, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// The balance denominator steers later rounds toward nodes whose current
// coverage is *thin*, not just toward raw frequency. Construct a graph
// where rounds 1–2 cover the a-side deeply ({a,a} over six parallel a's —
// each a ends up in 5 selected antichains) and the c-side thinly ({c,c}
// over three parallel c's — 2 each), and round 3 must choose between
// {a,b} and {b,c} with *equal* raw scores (the raw ablation then falls to
// the tie-break, picking {a,b} by key): the balance term discounts the
// deeply-covered a's harder, flipping the full algorithm to {b,c}.
func TestBalanceAblationChangesChoice(t *testing.T) {
	g := dfg.NewGraph("bal")
	for i := 1; i <= 6; i++ {
		g.MustAddNode(dfg.Node{Name: nm("a", i), Color: "a"}) // ids 0..5
	}
	for i := 1; i <= 3; i++ {
		g.MustAddNode(dfg.Node{Name: nm("c", i), Color: "c"}) // ids 6..8
	}
	b1 := g.MustAddNode(dfg.Node{Name: "b1", Color: "b"}) // id 9
	// Every a precedes every c; b1 sits between a1..a4 and c3, leaving it
	// parallel to exactly a5, a6, c1, c2.
	for a := 0; a < 6; a++ {
		for c := 6; c < 9; c++ {
			g.MustAddDep(a, c)
		}
	}
	for a := 0; a < 4; a++ {
		g.MustAddDep(a, b1)
	}
	g.MustAddDep(b1, 8)

	base := Config{C: 2, Pdef: 3, MaxSpan: SpanUnlimited}
	withBalance, err := Select(g, base)
	if err != nil {
		t.Fatal(err)
	}
	noBalance := base
	noBalance.DisableBalance = true
	without, err := Select(g, noBalance)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []*Selection{withBalance, without} {
		if sel.Steps[0].Chosen.Key() != "a,a" || sel.Steps[1].Chosen.Key() != "c,c" {
			t.Fatalf("rounds 1-2 should pick {a,a},{c,c}: got %s", sel.Patterns)
		}
	}
	if got := withBalance.Steps[2].Chosen.Key(); got != "b,c" {
		t.Errorf("with balance, round 3 chose {%s}, want {b,c}", got)
	}
	if got := without.Steps[2].Chosen.Key(); got != "a,b" {
		t.Errorf("without balance, round 3 chose {%s}, want {a,b}", got)
	}
}

func nm(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
