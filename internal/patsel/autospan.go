package patsel

import (
	"fmt"

	"mpsched/internal/antichain"
	"mpsched/internal/dfg"
	"mpsched/internal/sched"
)

// SelectBestSpan runs the selection algorithm once per span limit and
// keeps the selection whose multi-pattern schedule is shortest (ties go to
// the earlier listed limit). The span limit is the algorithm's only free
// parameter — the paper presents it as a complexity/quality trade-off
// without fixing a value — so a deployment sweeps a few small limits and
// schedules each candidate set, which is cheap next to enumeration.
//
// Unlike Select, a span of 0 here means the literal limit 0 (Config's zero
// value defaulting does not apply to the swept spans).
//
// Returns the winning selection, its schedule, and the winning span limit.
func SelectBestSpan(d *dfg.Graph, cfg Config, spans []int, opts sched.Options) (*Selection, *sched.Schedule, int, error) {
	if len(spans) == 0 {
		spans = []int{0, 1, 2}
	}
	cfg = cfg.withDefaults()
	var (
		bestSel  *Selection
		bestSch  *sched.Schedule
		bestSpan int
	)
	for _, span := range spans {
		res, err := antichain.Enumerate(d, antichain.Config{MaxSize: cfg.C, MaxSpan: span})
		if err != nil {
			return nil, nil, 0, fmt.Errorf("patsel: span %d: %w", span, err)
		}
		sel, err := SelectFrom(d, res, cfg)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("patsel: span %d: %w", span, err)
		}
		s, err := sched.MultiPattern(d, sel.Patterns, opts)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("patsel: span %d: %w", span, err)
		}
		if bestSch == nil || s.Length() < bestSch.Length() {
			bestSel, bestSch, bestSpan = sel, s, span
		}
	}
	return bestSel, bestSch, bestSpan, nil
}
