package patsel

import (
	"reflect"
	"testing"

	"mpsched/internal/antichain"
	"mpsched/internal/dfg"
	"mpsched/internal/workloads"
)

// stripIDs rebuilds a census in the pre-interning shape — Classes map
// only, no dense ByID view — which makes SelectFrom take the historical
// sorted-string-key iteration path. Selection over the interned dense
// view must produce byte-identical steps.
func stripIDs(res *antichain.Result) *antichain.Result {
	legacy := &antichain.Result{
		BySize:    res.BySize,
		Classes:   map[string]*antichain.Class{},
		NodeCount: res.NodeCount,
	}
	for key, cl := range res.Classes {
		c := *cl
		c.ID = 0
		legacy.Classes[key] = &c
	}
	return legacy
}

func requireSameSelection(t *testing.T, label string, want, got *Selection) {
	t.Helper()
	if len(want.Steps) != len(got.Steps) {
		t.Fatalf("%s: %d steps vs %d", label, len(got.Steps), len(want.Steps))
	}
	for i := range want.Steps {
		w, g := want.Steps[i], got.Steps[i]
		if !g.Chosen.Equal(w.Chosen) {
			t.Fatalf("%s step %d: chose %s, want %s", label, i, g.Chosen, w.Chosen)
		}
		if g.Priority != w.Priority || g.Synthesized != w.Synthesized {
			t.Fatalf("%s step %d: (prio %v, synth %v) vs (%v, %v)",
				label, i, g.Priority, g.Synthesized, w.Priority, w.Synthesized)
		}
		if !reflect.DeepEqual(g.Priorities, w.Priorities) {
			t.Fatalf("%s step %d: priorities differ:\n got %v\nwant %v", label, i, g.Priorities, w.Priorities)
		}
		if !reflect.DeepEqual(g.Deleted, w.Deleted) {
			t.Fatalf("%s step %d: deleted %v vs %v", label, i, g.Deleted, w.Deleted)
		}
	}
	if want.Patterns.String() != got.Patterns.String() {
		t.Fatalf("%s: selected sets differ: %s vs %s", label, got.Patterns, want.Patterns)
	}
}

// TestSelectStepsIdenticalOverInternedCensus runs the full selection loop
// twice per workload — over the interned census (dense pattern-id
// iteration) and over the same census stripped to the legacy map-only
// shape (sorted-key iteration) — and requires identical steps: same
// choices, priorities, deletions, synthesised patterns.
func TestSelectStepsIdenticalOverInternedCensus(t *testing.T) {
	graphs := map[string]*dfg.Graph{
		"3dft": workloads.ThreeDFT(),
		"fig4": workloads.Fig4Small(),
	}
	for name, gen := range map[string]func() (*dfg.Graph, error){
		"4dft":       func() (*dfg.Graph, error) { return workloads.NPointDFT(4) },
		"fir8x4":     func() (*dfg.Graph, error) { return workloads.FIRFilter(8, 4) },
		"matmul3":    func() (*dfg.Graph, error) { return workloads.MatMul(3) },
		"butterfly3": func() (*dfg.Graph, error) { return workloads.Butterfly(3) },
	} {
		g, err := gen()
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		graphs[name] = g
	}
	for name, g := range graphs {
		for _, cfg := range []Config{
			{Pdef: 2},
			{Pdef: 4},
			{Pdef: 3, MaxSpan: SpanUnlimited, C: 3},
			{Pdef: 4, DisableSubpatternDeletion: true},
		} {
			eff := cfg.WithDefaults()
			census, err := antichain.Enumerate(g, antichain.Config{MaxSize: eff.C, MaxSpan: eff.MaxSpan})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := SelectFrom(g, stripIDs(census), cfg)
			if err != nil {
				t.Fatalf("%s legacy: %v", name, err)
			}
			got, err := SelectFrom(g, census, cfg)
			if err != nil {
				t.Fatalf("%s interned: %v", name, err)
			}
			requireSameSelection(t, name, want, got)
		}
	}
}
