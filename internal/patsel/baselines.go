package patsel

import (
	"fmt"
	"math/rand"
	"sort"

	"mpsched/internal/antichain"
	"mpsched/internal/dfg"
	"mpsched/internal/pattern"
)

// Random generates Pdef patterns of exactly C uniform-random colors from
// the graph's color set, retrying until the set as a whole covers every
// color (an uncoverable color would make scheduling impossible — the
// paper's random baseline is always schedulable). Deterministic under rng.
func Random(d *dfg.Graph, cfg Config, rng *rand.Rand) (*pattern.Set, error) {
	cfg = cfg.withDefaults()
	if cfg.Pdef < 1 {
		return nil, fmt.Errorf("patsel: Pdef %d < 1", cfg.Pdef)
	}
	colors := d.Colors()
	if len(colors) == 0 {
		return nil, fmt.Errorf("patsel: graph has no nodes")
	}
	if len(colors) > cfg.C*cfg.Pdef {
		return nil, fmt.Errorf("patsel: %d colors cannot fit in %d patterns of %d slots",
			len(colors), cfg.Pdef, cfg.C)
	}
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		ps := pattern.NewSet()
		for len(ps.Patterns()) < cfg.Pdef {
			cs := make([]dfg.Color, cfg.C)
			for i := range cs {
				cs[i] = colors[rng.Intn(len(colors))]
			}
			ps.Add(pattern.New(cs...))
		}
		if ps.CoversColors(colors) {
			return ps, nil
		}
	}
	return nil, fmt.Errorf("patsel: could not cover %d colors in %d tries", len(colors), maxTries)
}

// GreedyFrequency is the ablation baseline that ranks candidate patterns
// purely by antichain count (no balance term, no size bonus), still
// respecting the color condition so the result is schedulable.
func GreedyFrequency(d *dfg.Graph, cfg Config) (*Selection, error) {
	cfg = cfg.withDefaults()
	cfg.DisableBalance = true
	cfg.DisableSizeBonus = true
	return Select(d, cfg)
}

// NodeCoverage is an alternative greedy selector: each round it picks the
// candidate covering the most not-yet-covered nodes (a set-cover
// heuristic), with the color condition as a feasibility guard. It is not in
// the paper; it serves as an independent comparison point in the benches.
func NodeCoverage(d *dfg.Graph, cfg Config) (*Selection, error) {
	cfg = cfg.withDefaults()
	if cfg.Pdef < 1 {
		return nil, fmt.Errorf("patsel: Pdef %d < 1", cfg.Pdef)
	}
	res, err := antichain.Enumerate(d, antichain.Config{MaxSize: cfg.C, MaxSpan: cfg.MaxSpan})
	if err != nil {
		return nil, err
	}
	type candidate struct {
		key   string
		class *antichain.Class
	}
	var pool []candidate
	for key, cl := range res.Classes {
		pool = append(pool, candidate{key, cl})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].key < pool[j].key })
	alive := make([]bool, len(pool))
	for i := range alive {
		alive[i] = true
	}

	completeColors := d.Colors()
	coveredColors := map[dfg.Color]bool{}
	coveredNodes := make([]bool, d.N())
	selected := pattern.NewSet()
	sel := &Selection{Patterns: selected, Enumerated: res}

	for round := 0; round < cfg.Pdef; round++ {
		uncovered := 0
		for _, c := range completeColors {
			if !coveredColors[c] {
				uncovered++
			}
		}
		minNew := uncovered - cfg.C*(cfg.Pdef-selected.Len()-1)

		step := Step{Priorities: map[string]float64{}}
		bestIdx, bestGain := -1, -1
		for i, cand := range pool {
			if !alive[i] {
				continue
			}
			if newColorCount(cand.class.Pattern, coveredColors) < minNew {
				continue
			}
			gain := 0
			for nd, h := range cand.class.NodeFreq {
				if h > 0 && !coveredNodes[nd] {
					gain++
				}
			}
			step.Priorities[cand.key] = float64(gain)
			if gain > bestGain ||
				(gain == bestGain && bestIdx >= 0 &&
					betterCandidate(1, cand.class.Pattern, 1, pool[bestIdx].class.Pattern)) {
				bestIdx, bestGain = i, gain
			}
		}

		var chosen pattern.Pattern
		if bestIdx >= 0 && bestGain > 0 {
			chosen = pool[bestIdx].class.Pattern
			step.Chosen = chosen
			step.Priority = float64(bestGain)
			for nd, h := range pool[bestIdx].class.NodeFreq {
				if h > 0 {
					coveredNodes[nd] = true
				}
			}
		} else {
			var missing []dfg.Color
			for _, c := range completeColors {
				if !coveredColors[c] {
					missing = append(missing, c)
				}
			}
			if len(missing) == 0 {
				break
			}
			if len(missing) > cfg.C {
				missing = missing[:cfg.C]
			}
			chosen = pattern.New(missing...)
			step.Chosen = chosen
			step.Synthesized = true
		}
		selected.Add(chosen)
		for _, c := range chosen.Colors() {
			coveredColors[c] = true
		}
		for i, cand := range pool {
			if alive[i] && cand.class.Pattern.SubpatternOf(chosen) {
				alive[i] = false
				step.Deleted = append(step.Deleted, cand.key)
			}
		}
		sel.Steps = append(sel.Steps, step)
	}
	return sel, nil
}
