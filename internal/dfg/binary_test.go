package dfg

import (
	"encoding/json"
	"errors"
	"testing"
)

// buildSemGraph returns a graph exercising every operand kind, semantics,
// outputs and several colors.
func buildSemGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("sem")
	a := g.MustAddNode(Node{Name: "a0", Color: "a", Op: OpAdd,
		Args: []Operand{InputRef("x0"), ConstVal(2.5)}})
	b := g.MustAddNode(Node{Name: "b0", Color: "b", Op: OpSub,
		Args: []Operand{NodeRef(a), ConstVal(-1)}})
	g.MustAddDep(a, b)
	c := g.MustAddNode(Node{Name: "c0", Color: "c", Op: OpNeg,
		Args: []Operand{NodeRef(b)}, Output: "y"})
	g.MustAddDep(b, c)
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{buildSemGraph(t), NewGraph("empty")} {
		data, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", g.Name, err)
		}
		var back Graph
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", g.Name, err)
		}
		if back.Name != g.Name || back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("%s: round trip changed shape: %v vs %v", g.Name, &back, g)
		}
		if g.N() > 0 && back.Fingerprint() != g.Fingerprint() {
			t.Fatalf("%s: fingerprint changed across binary round trip", g.Name)
		}
	}
}

func TestBinaryJSONCrossCodec(t *testing.T) {
	g := buildSemGraph(t)
	jsonData, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON Graph
	if err := json.Unmarshal(jsonData, &viaJSON); err != nil {
		t.Fatal(err)
	}
	binData, err := viaJSON.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var viaBoth Graph
	if err := viaBoth.UnmarshalBinary(binData); err != nil {
		t.Fatal(err)
	}
	if viaBoth.Fingerprint() != g.Fingerprint() {
		t.Fatal("JSON→binary chain changed the fingerprint")
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	valid, err := buildSemGraph(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBinaryFormat},
		{"bad magic", []byte("XXX\x01"), ErrBinaryFormat},
		{"bad version", []byte("MPG\x63"), ErrBinaryFormat},
		{"truncated", valid[:len(valid)/2], ErrBinaryFormat},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrBinaryFormat},
		// Counts far beyond the payload must be rejected before allocation.
		{"hostile node count", []byte("MPG\x01\x00\x00\xff\xff\xff\xff\x0f"), ErrBinaryFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := g.UnmarshalBinary(tc.data)
			if err == nil {
				t.Fatal("decoded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
			if g.N() != 0 {
				t.Fatal("failed decode mutated the receiver")
			}
		})
	}
}

// TestBinaryTypedStructuralErrors pins that structural failures of a
// well-framed binary graph surface the same typed errors as the JSON path.
func TestBinaryTypedStructuralErrors(t *testing.T) {
	encode := func(build func(g *Graph)) []byte {
		g := NewGraph("t")
		build(g)
		return g.AppendBinary(nil)
	}
	// An out-of-range edge and a cycle cannot be built through AddDep, so
	// splice them into valid frames by re-encoding by hand.
	twoNodes := encode(func(g *Graph) {
		g.MustAddNode(Node{Name: "n0", Color: "a"})
		g.MustAddNode(Node{Name: "n1", Color: "a"})
	})
	// ...frame ends with edge count 0; replace with hostile edge lists.
	edgeOOR := append(append([]byte{}, twoNodes[:len(twoNodes)-1]...), 1, 0, 9)
	cycle := append(append([]byte{}, twoNodes[:len(twoNodes)-1]...), 2, 0, 1, 1, 0)

	dupNames := encode(func(g *Graph) { g.MustAddNode(Node{Name: "dup", Color: "a"}) })
	// Duplicate the single node record by raising the count and repeating
	// its bytes: name "dup", color 0, op 0, output "", args 0.
	nodeRec := []byte{3, 'd', 'u', 'p', 0, 0, 0, 0}
	idx := len(dupNames) - len(nodeRec) - 2 // node count byte before record, edge count after
	dup := append(append([]byte{}, dupNames[:idx]...), 2)
	dup = append(dup, nodeRec...)
	dup = append(dup, nodeRec...)
	dup = append(dup, 0) // edges

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"edge out of range", edgeOOR, ErrIndexRange},
		{"cycle", cycle, ErrCyclic},
		{"duplicate names", dup, ErrDuplicateName},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := g.UnmarshalBinary(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}
