package dfg

import (
	"strings"
	"sync"
	"testing"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	// Fig. 4 of the paper: a1→a2→{b4,b5}, a3→{b4,b5}.
	g, err := NewBuilder("fig4").
		Node("a1", "a").
		Node("a2", "a").
		Node("a3", "a").
		Node("b4", "b").
		Node("b5", "b").
		Dep("a1", "a2").
		Dep("a2", "b4").
		Dep("a2", "b5").
		Dep("a3", "b4").
		Dep("a3", "b5").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestAddNodeValidation(t *testing.T) {
	g := NewGraph("t")
	if _, err := g.AddNode(Node{Name: "", Color: "a"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := g.AddNode(Node{Name: "x", Color: ""}); err == nil {
		t.Error("empty color accepted")
	}
	if _, err := g.AddNode(Node{Name: "x", Color: "a"}); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
	if _, err := g.AddNode(Node{Name: "x", Color: "b"}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLookupAndAccessors(t *testing.T) {
	g := smallGraph(t)
	id, ok := g.ID("a3")
	if !ok {
		t.Fatal("a3 not found")
	}
	if g.NameOf(id) != "a3" || g.ColorOf(id) != "a" {
		t.Errorf("accessors wrong for a3")
	}
	if _, ok := g.ID("zz"); ok {
		t.Error("phantom node found")
	}
	if g.N() != 5 || g.M() != 5 {
		t.Errorf("N=%d M=%d, want 5,5", g.N(), g.M())
	}
}

func TestColors(t *testing.T) {
	g := smallGraph(t)
	cols := g.Colors()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Colors = %v", cols)
	}
	counts := g.ColorCounts()
	if counts["a"] != 3 || counts["b"] != 2 {
		t.Errorf("ColorCounts = %v", counts)
	}
	as := g.NodesByColor("a")
	if len(as) != 3 {
		t.Errorf("NodesByColor(a) = %v", as)
	}
}

func TestLevelsFig4(t *testing.T) {
	g := smallGraph(t)
	lv := g.Levels()
	a1, a2, a3 := g.MustID("a1"), g.MustID("a2"), g.MustID("a3")
	b4, b5 := g.MustID("b4"), g.MustID("b5")
	if lv.ASAP[a1] != 0 || lv.ASAP[a2] != 1 || lv.ASAP[b4] != 2 {
		t.Errorf("ASAP chain wrong: %v", lv.ASAP)
	}
	if lv.ASAP[a3] != 0 || lv.ALAP[a3] != 1 {
		t.Errorf("a3 levels (%d,%d), want (0,1)", lv.ASAP[a3], lv.ALAP[a3])
	}
	if lv.Height[a1] != 3 || lv.Height[b5] != 1 {
		t.Errorf("heights wrong")
	}
}

func TestReachFig4(t *testing.T) {
	g := smallGraph(t)
	r := g.Reach()
	a1, a2, a3 := g.MustID("a1"), g.MustID("a2"), g.MustID("a3")
	b4, b5 := g.MustID("b4"), g.MustID("b5")
	if !r.Parallelizable(a1, a3) || !r.Parallelizable(a2, a3) || !r.Parallelizable(b4, b5) {
		t.Error("expected parallel pairs missing")
	}
	if r.Parallelizable(a1, a2) {
		t.Error("a1 ∥ a2 should be comparable")
	}
	// Every a is comparable with every b — this is why pattern {ab} has no
	// antichain in the paper's example.
	for _, a := range []int{a1, a2, a3} {
		for _, b := range []int{b4, b5} {
			if !r.Comparable(a, b) {
				t.Errorf("%s and %s should be comparable", g.NameOf(a), g.NameOf(b))
			}
		}
	}
}

func TestCloneDeep(t *testing.T) {
	g := smallGraph(t)
	c := g.Clone()
	c.MustAddNode(Node{Name: "extra", Color: "z"})
	if g.N() == c.N() {
		t.Error("clone shares node storage")
	}
	if _, ok := g.ID("extra"); ok {
		t.Error("clone mutation leaked")
	}
}

func TestValidateOperandEdgeConsistency(t *testing.T) {
	g := NewGraph("t")
	x := g.MustAddNode(Node{Name: "x", Color: "a", Op: OpAdd, Args: []Operand{InputRef("p"), InputRef("q")}})
	_ = x
	y := g.MustAddNode(Node{Name: "y", Color: "a", Op: OpAdd, Args: []Operand{NodeRef(0), ConstVal(1)}})
	_ = y
	// Missing edge x→y: Validate must complain.
	if err := g.Validate(); err == nil {
		t.Error("missing operand edge not detected")
	}
	g.MustAddDep(0, 1)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestValidateArity(t *testing.T) {
	g := NewGraph("t")
	g.MustAddNode(Node{Name: "x", Color: "a", Op: OpAdd, Args: []Operand{ConstVal(1)}})
	if err := g.Validate(); err == nil {
		t.Error("unary add not rejected")
	}
	g2 := NewGraph("t2")
	g2.MustAddNode(Node{Name: "x", Color: "a", Op: OpNeg, Args: []Operand{ConstVal(1), ConstVal(2)}})
	if err := g2.Validate(); err == nil {
		t.Error("binary neg not rejected")
	}
}

func TestEvaluate(t *testing.T) {
	// y = (p+q) * 3; z = -(y)
	g, err := NewBuilder("eval").
		OpNode("sum", "a", OpAdd, In("p"), In("q")).
		OpNode("prod", "c", OpMul, N("sum"), K(3)).
		OpNode("neg", "n", OpNeg, N("prod")).
		Output("prod", "y").
		Output("neg", "z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	values, outputs, err := g.Evaluate(map[string]float64{"p": 2, "q": 5})
	if err != nil {
		t.Fatal(err)
	}
	if outputs["y"] != 21 || outputs["z"] != -21 {
		t.Errorf("outputs = %v", outputs)
	}
	if values[g.MustID("sum")] != 7 {
		t.Errorf("sum = %v", values[g.MustID("sum")])
	}
}

func TestEvaluateSubOrder(t *testing.T) {
	g, err := NewBuilder("sub").
		OpNode("d", "b", OpSub, In("x"), In("y")).
		Output("d", "out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_, outputs, err := g.Evaluate(map[string]float64{"x": 10, "y": 4})
	if err != nil {
		t.Fatal(err)
	}
	if outputs["out"] != 6 {
		t.Errorf("10-4 = %v, want 6", outputs["out"])
	}
}

func TestEvaluateMissingInput(t *testing.T) {
	g, err := NewBuilder("mi").
		OpNode("s", "a", OpAdd, In("x"), In("y")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Evaluate(map[string]float64{"x": 1}); err == nil {
		t.Error("missing input not reported")
	}
}

func TestEvaluateStructuralNodeFails(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := g.Evaluate(nil); err == nil {
		t.Error("structural graph evaluated without error")
	}
}

func TestInputOutputNames(t *testing.T) {
	g, err := NewBuilder("names").
		OpNode("s", "a", OpAdd, In("beta"), In("alpha")).
		OpNode("m", "c", OpMul, N("s"), K(2)).
		Output("m", "result").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ins := g.InputNames()
	if len(ins) != 2 || ins[0] != "alpha" || ins[1] != "beta" {
		t.Errorf("InputNames = %v", ins)
	}
	outs := g.OutputNames()
	if len(outs) != 1 || outs[0] != "result" {
		t.Errorf("OutputNames = %v", outs)
	}
}

func TestBuilderErrors(t *testing.T) {
	_, err := NewBuilder("bad").
		Node("x", "a").
		Dep("x", "phantom").
		Build()
	if err == nil {
		t.Error("unknown dep target accepted")
	}
	_, err = NewBuilder("bad2").
		OpNode("y", "a", OpAdd, N("phantom"), K(1)).
		Build()
	if err == nil {
		t.Error("unknown operand accepted")
	}
	_, err = NewBuilder("bad3").
		Node("x", "a").
		Output("phantom", "o").
		Build()
	if err == nil {
		t.Error("unknown output node accepted")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpAdd: "add", OpSub: "sub", OpMul: "mul", OpNeg: "neg", OpPass: "pass", OpNone: "none"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
		back, err := ParseOp(want)
		if err != nil || back != op {
			t.Errorf("ParseOp(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseOp("frobnicate"); err == nil {
		t.Error("bogus op parsed")
	}
}

func TestFormatLevelTable(t *testing.T) {
	g := smallGraph(t)
	out := FormatLevelTable(g)
	if !strings.Contains(out, "a1") || !strings.Contains(out, "asap") {
		t.Errorf("table missing content:\n%s", out)
	}
	// a1 (asap 0, alap 0) must precede b4 (asap 2).
	if strings.Index(out, "a1") > strings.Index(out, "b4") {
		t.Error("table not sorted by level")
	}
}

func TestFingerprint(t *testing.T) {
	g := smallGraph(t)
	fp := g.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}
	if g.Fingerprint() != fp {
		t.Error("fingerprint not stable across calls")
	}

	// Clones and name changes preserve it; structural edits change it.
	c := g.Clone()
	if c.Fingerprint() != fp {
		t.Error("clone fingerprint differs")
	}
	c.Name = "renamed"
	if c.Fingerprint() != fp {
		t.Error("graph-level name must not affect the fingerprint")
	}
	id := c.MustAddNode(Node{Name: "extra", Color: "c"})
	if c.Fingerprint() == fp {
		t.Error("adding a node must change the fingerprint")
	}
	before := c.Fingerprint()
	c.MustAddDep(c.MustID("b5"), id)
	if c.Fingerprint() == before {
		t.Error("adding an edge must change the fingerprint")
	}
	before = c.Fingerprint()
	c.SetOutput(id, "y")
	if c.Fingerprint() == before {
		t.Error("SetOutput must invalidate the fingerprint (outputs are hashed)")
	}
}

func TestGraphLazyCachesConcurrentReads(t *testing.T) {
	g := smallGraph(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Levels()
			g.Reach()
			g.Fingerprint()
		}()
	}
	wg.Wait()
}

func TestFingerprintEdgeOrderCanonical(t *testing.T) {
	// The same labelled DAG built with edges inserted in different orders
	// must fingerprint identically.
	build := func(edges [][2]string) *Graph {
		g := NewGraph("g")
		for _, n := range []string{"x", "y", "z"} {
			g.MustAddNode(Node{Name: n, Color: "a"})
		}
		for _, e := range edges {
			g.MustAddDep(g.MustID(e[0]), g.MustID(e[1]))
		}
		return g
	}
	g1 := build([][2]string{{"x", "y"}, {"x", "z"}, {"y", "z"}})
	g2 := build([][2]string{{"y", "z"}, {"x", "z"}, {"x", "y"}})
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("edge insertion order must not affect the fingerprint")
	}
}

func TestFingerprintDistinguishesLabels(t *testing.T) {
	base := smallGraph(t)
	recolored := smallGraph(t)
	// Rebuild with one color changed: fingerprints must differ.
	g, err := NewBuilder("fig4").
		Node("a1", "a").
		Node("a2", "c"). // was "a"
		Node("a3", "a").
		Node("b4", "b").
		Node("b5", "b").
		Dep("a1", "a2").
		Dep("a2", "b4").
		Dep("a2", "b5").
		Dep("a3", "b4").
		Dep("a3", "b5").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != recolored.Fingerprint() {
		t.Error("identical builds must share a fingerprint")
	}
	if base.Fingerprint() == g.Fingerprint() {
		t.Error("a node color change must change the fingerprint")
	}
}
