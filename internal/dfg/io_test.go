package dfg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g, err := NewBuilder("rt").
		OpNode("s", "a", OpAdd, In("x"), K(2)).
		OpNode("m", "c", OpMul, N("s"), K(3)).
		Output("m", "y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || back.N() != 2 || back.M() != 1 {
		t.Errorf("round trip lost structure: %s", back.String())
	}
	_, out1, err := g.Evaluate(map[string]float64{"x": 4})
	if err != nil {
		t.Fatal(err)
	}
	_, out2, err := back.Evaluate(map[string]float64{"x": 4})
	if err != nil {
		t.Fatal(err)
	}
	if out1["y"] != out2["y"] {
		t.Errorf("semantics lost: %v vs %v", out1, out2)
	}
}

func TestJSONRejectsBadEdges(t *testing.T) {
	blob := `{"name":"bad","nodes":[{"name":"x","color":"a"}],"edges":[[0,7]]}`
	var g Graph
	if err := json.Unmarshal([]byte(blob), &g); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	blob := `{"name":"cyc","nodes":[{"name":"x","color":"a"},{"name":"y","color":"a"}],"edges":[[0,1],[1,0]]}`
	var g Graph
	if err := json.Unmarshal([]byte(blob), &g); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g, err := NewBuilder("txt").
		Node("n1", "a").
		Node("n2", "b").
		Node("n3", "c").
		Dep("n1", "n2").
		Dep("n2", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "txt" || back.N() != 3 || back.M() != 2 {
		t.Errorf("text round trip lost structure: %s", back.String())
	}
	if !back.Digraph().HasEdge(back.MustID("n1"), back.MustID("n2")) {
		t.Error("edge lost in text round trip")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"node onlytwo",                         // arity
		"edge x y",                             // unknown nodes
		"node n1 a\nedge n1 n1",                // self loop
		"frobnicate",                           // unknown directive
		"node n1 a\nnode n1 a",                 // duplicate
		"node n1 a\nnode n2 a\nedge n1 phantm", // unknown head
	}
	for _, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid input %q", src)
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
dfg demo

node x a
node y b
edge x y
`
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" || g.N() != 2 || g.M() != 1 {
		t.Errorf("parse result: %s", g.String())
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := NewBuilder("dot-test").
		Node("x", "a").
		Node("y", "b").
		Node("z", "c").
		Dep("x", "y").
		Dep("y", "z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph dot_test", `label="x"`, "shape=box", "rank=same", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
