package dfg

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzUnmarshalGraph feeds arbitrary bytes through the JSON decoder — the
// path network clients reach via the mpschedd compile service. The decoder
// must never panic; whatever it accepts must validate cleanly and survive a
// marshal/unmarshal round trip with the fingerprint intact.
func FuzzUnmarshalGraph(f *testing.F) {
	// Well-formed seeds.
	f.Add([]byte(`{"name":"g","nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"b"}],"edges":[[0,1]]}`))
	f.Add([]byte(`{"name":"sem","nodes":[{"name":"n0","color":"a","op":"add","args":[{"input":"x"},{"const":2}],"output":"y"}],"edges":[]}`))
	// Hostile seeds: out-of-range edge, out-of-range operand, duplicate
	// names, cycle, empty operand, bad op, wrong shapes.
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,7]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[-1,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"add","args":[{"node":99},{"node":-3}]}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"dup","color":"a"},{"name":"dup","color":"b"}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"a"}],"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"add","args":[{}]}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"frobnicate"}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"","color":""}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected — the only other acceptable outcome is below
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted a graph that fails Validate: %v\ninput: %s", err, data)
		}
		// Accepted graphs must round-trip: same labelled structure.
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var g2 Graph
		if err := json.Unmarshal(out, &g2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nmarshaled: %s", err, out)
		}
		if g.Fingerprint() != g2.Fingerprint() {
			t.Fatalf("fingerprint changed across round trip\nin:  %s\nout: %s", data, out)
		}
		// Lazy attributes must be computable (no panic) on accepted graphs.
		g.Levels()
		g.Reach()
	})
}

// FuzzBinaryGraph feeds arbitrary bytes through the binary graph decoder —
// the frame network clients reach via the mpschedd binary wire codec
// (internal/wire). The decoder must never panic; whatever it accepts must
// validate cleanly, survive a binary re-encode with the fingerprint
// intact, and stay equivalent to the JSON codec: the same graph pushed
// through JSON must carry the same fingerprint back.
func FuzzBinaryGraph(f *testing.F) {
	// Well-formed seeds: every operand kind, interned colors, edges.
	wellFormed := []string{
		`{"name":"g","nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"b"}],"edges":[[0,1]]}`,
		`{"name":"sem","nodes":[{"name":"n0","color":"a","op":"add","args":[{"input":"x"},{"const":2}],"output":"y"}],"edges":[]}`,
		`{"name":"diamond","nodes":[{"name":"a","color":"a"},{"name":"b","color":"b"},{"name":"c","color":"b"},{"name":"d","color":"a"}],"edges":[[0,1],[0,2],[1,3],[2,3]]}`,
	}
	for _, src := range wellFormed {
		var g Graph
		if err := json.Unmarshal([]byte(src), &g); err != nil {
			f.Fatal(err)
		}
		f.Add(g.AppendBinary(nil))
	}
	// Hostile seeds: bad magic, bad version, truncations, hostile counts,
	// out-of-range references.
	f.Add([]byte{})
	f.Add([]byte("MPG"))
	f.Add([]byte("MPG\x02"))
	f.Add([]byte("XXX\x01\x00"))
	f.Add([]byte("MPG\x01\x00\x00\xff\xff\xff\xff\x0f"))
	f.Add([]byte("MPG\x01\x00\x01\x01a\x01\x02n0\x07\x00\x00\x00"))
	full := buildFuzzSeed().AppendBinary(nil)
	f.Add(full)
	f.Add(full[:len(full)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := g.UnmarshalBinary(data); err != nil {
			return // rejected — the only other acceptable outcome is below
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary decoder accepted a graph that fails Validate: %v", err)
		}
		// Accepted graphs must round-trip through the binary codec.
		var g2 Graph
		if err := g2.UnmarshalBinary(g.AppendBinary(nil)); err != nil {
			t.Fatalf("binary round-trip decode failed: %v", err)
		}
		if g.Fingerprint() != g2.Fingerprint() {
			t.Fatal("fingerprint changed across binary round trip")
		}
		// ...and through the JSON codec: the two wire formats must stay
		// interchangeable for every graph the binary decoder accepts.
		jsonData, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("JSON re-marshal failed: %v", err)
		}
		var g3 Graph
		if err := json.Unmarshal(jsonData, &g3); err != nil {
			t.Fatalf("JSON round-trip decode failed: %v", err)
		}
		if g.Fingerprint() != g3.Fingerprint() {
			t.Fatal("fingerprint changed across the JSON cross-codec trip")
		}
		g.Levels()
		g.Reach()
	})
}

// buildFuzzSeed is a richer well-formed seed than the JSON-derived ones:
// constants, negations and outputs across three colors.
func buildFuzzSeed() *Graph {
	g := NewGraph("seed")
	a := g.MustAddNode(Node{Name: "a0", Color: "a", Op: OpAdd,
		Args: []Operand{InputRef("x"), ConstVal(1.5)}})
	b := g.MustAddNode(Node{Name: "b0", Color: "b", Op: OpNeg,
		Args: []Operand{NodeRef(a)}})
	g.MustAddDep(a, b)
	c := g.MustAddNode(Node{Name: "c0", Color: "c", Op: OpMul,
		Args: []Operand{NodeRef(a), NodeRef(b)}, Output: "y"})
	g.MustAddDep(a, c)
	g.MustAddDep(b, c)
	return g
}

// TestUnmarshalTypedErrors pins the error classification the compile
// service relies on to map hostile input to 4xx responses.
func TestUnmarshalTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"edge out of range", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,7]]}`, ErrIndexRange},
		{"edge negative", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[-2,0]]}`, ErrIndexRange},
		{"operand out of range", `{"nodes":[{"name":"n0","color":"a","op":"add","args":[{"node":42},{"node":0}]}],"edges":[]}`, ErrIndexRange},
		{"duplicate names", `{"nodes":[{"name":"x","color":"a"},{"name":"x","color":"b"}],"edges":[]}`, ErrDuplicateName},
		{"two-cycle", `{"nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"a"}],"edges":[[0,1],[1,0]]}`, ErrCyclic},
		{"self-cycle", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,0]]}`, ErrCyclic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := json.Unmarshal([]byte(tc.in), &g)
			if err == nil {
				t.Fatalf("decoded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}
