package dfg

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzUnmarshalGraph feeds arbitrary bytes through the JSON decoder — the
// path network clients reach via the mpschedd compile service. The decoder
// must never panic; whatever it accepts must validate cleanly and survive a
// marshal/unmarshal round trip with the fingerprint intact.
func FuzzUnmarshalGraph(f *testing.F) {
	// Well-formed seeds.
	f.Add([]byte(`{"name":"g","nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"b"}],"edges":[[0,1]]}`))
	f.Add([]byte(`{"name":"sem","nodes":[{"name":"n0","color":"a","op":"add","args":[{"input":"x"},{"const":2}],"output":"y"}],"edges":[]}`))
	// Hostile seeds: out-of-range edge, out-of-range operand, duplicate
	// names, cycle, empty operand, bad op, wrong shapes.
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,7]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[-1,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"add","args":[{"node":99},{"node":-3}]}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"dup","color":"a"},{"name":"dup","color":"b"}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"a"}],"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,0]]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"add","args":[{}]}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n0","color":"a","op":"frobnicate"}],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"","color":""}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected — the only other acceptable outcome is below
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted a graph that fails Validate: %v\ninput: %s", err, data)
		}
		// Accepted graphs must round-trip: same labelled structure.
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var g2 Graph
		if err := json.Unmarshal(out, &g2); err != nil {
			t.Fatalf("round-trip decode failed: %v\nmarshaled: %s", err, out)
		}
		if g.Fingerprint() != g2.Fingerprint() {
			t.Fatalf("fingerprint changed across round trip\nin:  %s\nout: %s", data, out)
		}
		// Lazy attributes must be computable (no panic) on accepted graphs.
		g.Levels()
		g.Reach()
	})
}

// TestUnmarshalTypedErrors pins the error classification the compile
// service relies on to map hostile input to 4xx responses.
func TestUnmarshalTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"edge out of range", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,7]]}`, ErrIndexRange},
		{"edge negative", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[-2,0]]}`, ErrIndexRange},
		{"operand out of range", `{"nodes":[{"name":"n0","color":"a","op":"add","args":[{"node":42},{"node":0}]}],"edges":[]}`, ErrIndexRange},
		{"duplicate names", `{"nodes":[{"name":"x","color":"a"},{"name":"x","color":"b"}],"edges":[]}`, ErrDuplicateName},
		{"two-cycle", `{"nodes":[{"name":"n0","color":"a"},{"name":"n1","color":"a"}],"edges":[[0,1],[1,0]]}`, ErrCyclic},
		{"self-cycle", `{"nodes":[{"name":"n0","color":"a"}],"edges":[[0,0]]}`, ErrCyclic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := json.Unmarshal([]byte(tc.in), &g)
			if err == nil {
				t.Fatalf("decoded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}
