package dfg

import (
	"fmt"

	"mpsched/internal/graph"
)

// Evaluate executes the graph's arithmetic semantics in dependency order and
// returns the value of every node plus the named outputs. Every node must
// carry semantics (Op ≠ OpNone); inputs must provide every referenced
// external name.
//
// This is the *reference* interpreter: the Montium simulator's results are
// checked against it.
func (d *Graph) Evaluate(inputs map[string]float64) (values []float64, outputs map[string]float64, err error) {
	order, err := graph.TopoSort(d.g)
	if err != nil {
		return nil, nil, fmt.Errorf("dfg %q: %w", d.Name, err)
	}
	values = make([]float64, d.N())
	outputs = map[string]float64{}
	for _, id := range order {
		n := d.nodes[id]
		if n.Op == OpNone {
			return nil, nil, fmt.Errorf("dfg %q: node %s has no semantics", d.Name, n.Name)
		}
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			switch a.Kind {
			case OperandNode:
				args[i] = values[a.Node]
			case OperandInput:
				v, ok := inputs[a.Input]
				if !ok {
					return nil, nil, fmt.Errorf("dfg %q: node %s: missing input %q", d.Name, n.Name, a.Input)
				}
				args[i] = v
			case OperandConst:
				args[i] = a.Const
			}
		}
		v, err := applyOp(n.Op, args)
		if err != nil {
			return nil, nil, fmt.Errorf("dfg %q: node %s: %w", d.Name, n.Name, err)
		}
		values[id] = v
		if n.Output != "" {
			outputs[n.Output] = v
		}
	}
	return values, outputs, nil
}

func applyOp(op Op, args []float64) (float64, error) {
	switch op {
	case OpAdd:
		s := 0.0
		for _, a := range args {
			s += a
		}
		return s, nil
	case OpSub:
		if len(args) == 0 {
			return 0, fmt.Errorf("sub with no operands")
		}
		s := args[0]
		for _, a := range args[1:] {
			s -= a
		}
		return s, nil
	case OpMul:
		p := 1.0
		for _, a := range args {
			p *= a
		}
		return p, nil
	case OpNeg:
		return -args[0], nil
	case OpPass:
		return args[0], nil
	default:
		return 0, fmt.Errorf("cannot evaluate op %s", op)
	}
}

// InputNames returns the sorted set of external input names referenced by
// the graph's operands.
func (d *Graph) InputNames() []string {
	seen := map[string]bool{}
	for _, n := range d.nodes {
		for _, a := range n.Args {
			if a.Kind == OperandInput {
				seen[a.Input] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

// OutputNames returns the sorted set of output names produced by the graph.
func (d *Graph) OutputNames() []string {
	var out []string
	for _, n := range d.nodes {
		if n.Output != "" {
			out = append(out, n.Output)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
