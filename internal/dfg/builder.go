package dfg

import "fmt"

// Builder constructs a Graph by node name, deferring id resolution so that
// edges and operands can reference nodes in any order. Errors accumulate and
// are reported once by Build, keeping construction code linear.
type Builder struct {
	g    *Graph
	errs []error
}

// NewBuilder returns a builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: NewGraph(name)}
}

// Node adds a structural node (no semantics).
func (b *Builder) Node(name string, color Color) *Builder {
	if _, err := b.g.AddNode(Node{Name: name, Color: color}); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// OpNode adds a node with semantics. Operands of kind OperandNode are given
// by name via N(); the matching dependency edges are inserted automatically.
func (b *Builder) OpNode(name string, color Color, op Op, args ...BOperand) *Builder {
	id, err := b.g.AddNode(Node{Name: name, Color: color, Op: op})
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	resolved := make([]Operand, 0, len(args))
	for _, a := range args {
		opnd, err := a.resolve(b.g)
		if err != nil {
			b.errs = append(b.errs, fmt.Errorf("node %s: %w", name, err))
			continue
		}
		resolved = append(resolved, opnd)
		if opnd.Kind == OperandNode {
			if err := b.g.AddDep(opnd.Node, id); err != nil {
				b.errs = append(b.errs, err)
			}
		}
	}
	b.g.nodes[id].Args = resolved
	return b
}

// Dep adds a dependency edge between two named nodes.
func (b *Builder) Dep(from, to string) *Builder {
	f, ok := b.g.ID(from)
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dep: unknown node %q", from))
		return b
	}
	t, ok := b.g.ID(to)
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dep: unknown node %q", to))
		return b
	}
	if err := b.g.AddDep(f, t); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Output marks a named node as producing the named result.
func (b *Builder) Output(nodeName, outputName string) *Builder {
	id, ok := b.g.ID(nodeName)
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("output: unknown node %q", nodeName))
		return b
	}
	b.g.SetOutput(id, outputName)
	return b
}

// Build validates and returns the graph, or the first accumulated error.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("dfg builder: %d errors, first: %w", len(b.errs), b.errs[0])
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build for statically-valid construction code.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BOperand is a by-name operand used with Builder.OpNode.
type BOperand struct {
	kind  OperandKind
	name  string
	value float64
}

// N references the result of the named node.
func N(name string) BOperand { return BOperand{kind: OperandNode, name: name} }

// In references the named external input.
func In(name string) BOperand { return BOperand{kind: OperandInput, name: name} }

// K is a constant operand.
func K(v float64) BOperand { return BOperand{kind: OperandConst, value: v} }

func (a BOperand) resolve(g *Graph) (Operand, error) {
	switch a.kind {
	case OperandNode:
		id, ok := g.ID(a.name)
		if !ok {
			return Operand{}, fmt.Errorf("unknown operand node %q", a.name)
		}
		return NodeRef(id), nil
	case OperandInput:
		return InputRef(a.name), nil
	default:
		return ConstVal(a.value), nil
	}
}
