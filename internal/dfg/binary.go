package dfg

import (
	"encoding/binary"
	"fmt"
	"math"
	"unicode/utf8"
)

// Binary graph framing ("MPG", version 1) — the compact counterpart of the
// JSON shape in io.go, used by the binary wire codec (internal/wire) so a
// graph crossing the network costs bytes proportional to its content, not
// to JSON tokenisation. All integers are unsigned varints unless noted;
// strings are a uvarint length followed by raw bytes; floats are 8-byte
// little-endian IEEE 754. Colors are interned into a table in first-use
// order, so each node carries a small table index instead of a string.
//
//	magic   "MPG" 0x01                     (format + version)
//	name    string                         (graph name)
//	colors  uvarint count, count × string  (interned color table)
//	nodes   uvarint count, count × node
//	edges   uvarint count, count × (uvarint from, uvarint to)
//
//	node    name string, color uvarint (table index), op uvarint,
//	        output string, args uvarint count, count × arg
//	arg     kind byte: 0 node (uvarint id), 1 input (string),
//	        2 const (8-byte float)
//
// Decoding is as strict as the JSON path: the decoded graph goes through
// the same construction and Validate calls, so duplicate names
// (ErrDuplicateName), out-of-range references (ErrIndexRange) and cycles
// (ErrCyclic) are rejected with the same typed errors and never panic —
// the format is safe to accept from untrusted network clients. Every
// count is bounded by the remaining input length before allocation, so a
// hostile header cannot make the decoder allocate unbounded memory.
//
// The two wire codecs are interchangeable: anything the binary decoder
// accepts can round-trip through the JSON codec with its fingerprint
// intact (pinned by FuzzBinaryGraph). That parity is enforced here by
// rejecting what JSON cannot express — invalid UTF-8 in strings,
// non-finite constants, and empty input-operand names.

// Framing constants for the binary graph format.
const (
	binaryGraphMagic   = "MPG"
	binaryGraphVersion = 1
)

// ErrBinaryFormat reports a malformed binary graph frame (bad magic,
// unknown version, truncated input, or counts inconsistent with the
// payload). Structural failures of a well-framed graph keep their own
// typed errors (ErrDuplicateName, ErrIndexRange, ErrCyclic).
var ErrBinaryFormat = fmt.Errorf("dfg: malformed binary graph")

// AppendBinary encodes the graph in the binary framing, appending to buf
// and returning the extended slice (the append idiom — pass a pooled
// buffer to amortise allocations across encodes).
func (d *Graph) AppendBinary(buf []byte) []byte {
	buf = append(buf, binaryGraphMagic...)
	buf = append(buf, binaryGraphVersion)
	buf = appendString(buf, d.Name)

	// Intern colors in first-use order. Color sets are tiny (the paper's
	// graphs use 2–4), so a linear scan beats a map.
	var colors []Color
	colorIdx := func(c Color) int {
		for i, have := range colors {
			if have == c {
				return i
			}
		}
		colors = append(colors, c)
		return len(colors) - 1
	}
	for _, n := range d.nodes {
		colorIdx(n.Color)
	}
	buf = binary.AppendUvarint(buf, uint64(len(colors)))
	for _, c := range colors {
		buf = appendString(buf, string(c))
	}

	buf = binary.AppendUvarint(buf, uint64(len(d.nodes)))
	for _, n := range d.nodes {
		buf = appendString(buf, n.Name)
		buf = binary.AppendUvarint(buf, uint64(colorIdx(n.Color)))
		buf = binary.AppendUvarint(buf, uint64(n.Op))
		buf = appendString(buf, n.Output)
		buf = binary.AppendUvarint(buf, uint64(len(n.Args)))
		for _, a := range n.Args {
			buf = append(buf, byte(a.Kind))
			switch a.Kind {
			case OperandNode:
				buf = binary.AppendUvarint(buf, uint64(a.Node))
			case OperandInput:
				buf = appendString(buf, a.Input)
			case OperandConst:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Const))
			}
		}
	}

	edges := d.g.Edges()
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e[0]))
		buf = binary.AppendUvarint(buf, uint64(e[1]))
	}
	return buf
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (d *Graph) MarshalBinary() ([]byte, error) {
	return d.AppendBinary(nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, decoding the
// framing produced by AppendBinary. On success the receiver is replaced
// wholesale (like UnmarshalJSON); on any error it is left untouched.
func (d *Graph) UnmarshalBinary(data []byte) error {
	r := binReader{buf: data}
	if string(r.take(len(binaryGraphMagic))) != binaryGraphMagic {
		return fmt.Errorf("%w: bad magic", ErrBinaryFormat)
	}
	if v := r.byte(); v != binaryGraphVersion {
		if r.err == nil {
			return fmt.Errorf("%w: unknown version %d", ErrBinaryFormat, v)
		}
		return r.err
	}
	name := r.string()

	ncolors := r.count()
	colors := make([]Color, 0, ncolors)
	for i := 0; i < ncolors && r.err == nil; i++ {
		colors = append(colors, Color(r.string()))
	}

	nnodes := r.count()
	fresh := NewGraph(name)
	for i := 0; i < nnodes && r.err == nil; i++ {
		n := Node{Name: r.string()}
		ci := r.uvarint()
		if r.err == nil && ci >= uint64(len(colors)) {
			return fmt.Errorf("%w: node %q references color %d of %d", ErrBinaryFormat, n.Name, ci, len(colors))
		}
		if r.err == nil {
			n.Color = colors[ci]
		}
		op := r.uvarint()
		if r.err == nil {
			if _, known := opNames[Op(op)]; !known {
				return fmt.Errorf("%w: node %q has unknown op %d", ErrBinaryFormat, n.Name, op)
			}
			n.Op = Op(op)
		}
		n.Output = r.string()
		nargs := r.count()
		if nargs > 0 && r.err == nil {
			n.Args = make([]Operand, 0, nargs)
		}
		for j := 0; j < nargs && r.err == nil; j++ {
			switch kind := r.byte(); OperandKind(kind) {
			case OperandNode:
				n.Args = append(n.Args, NodeRef(int(r.uvarint())))
			case OperandInput:
				in := r.string()
				if r.err == nil && in == "" {
					return fmt.Errorf("%w: node %q has an empty input operand", ErrBinaryFormat, n.Name)
				}
				n.Args = append(n.Args, InputRef(in))
			case OperandConst:
				v := math.Float64frombits(r.u64())
				if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
					return fmt.Errorf("%w: node %q has a non-finite constant", ErrBinaryFormat, n.Name)
				}
				n.Args = append(n.Args, ConstVal(v))
			default:
				if r.err == nil {
					return fmt.Errorf("%w: node %q has unknown operand kind %d", ErrBinaryFormat, n.Name, kind)
				}
			}
		}
		if r.err != nil {
			return r.err
		}
		if _, err := fresh.AddNode(n); err != nil {
			return err
		}
	}

	nedges := r.count()
	for i := 0; i < nedges && r.err == nil; i++ {
		from, to := int(r.uvarint()), int(r.uvarint())
		if r.err != nil {
			break
		}
		if from < 0 || from >= fresh.N() || to < 0 || to >= fresh.N() {
			return fmt.Errorf("dfg: edge [%d %d]: %w (graph has %d nodes)", from, to, ErrIndexRange, fresh.N())
		}
		if err := fresh.AddDep(from, to); err != nil {
			return err
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinaryFormat, len(r.buf)-r.off)
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	d.replaceWith(fresh)
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// binReader is a cursor over a byte slice with sticky error handling, so
// decode code reads fields linearly and checks r.err at block boundaries.
// After the first failure every read returns a zero value.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrBinaryFormat, r.off)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that sizes an upcoming allocation, bounding it by
// the remaining input: every counted element occupies at least one byte,
// so a count larger than what is left is hostile framing, rejected before
// any allocation happens.
func (r *binReader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrBinaryFormat, v, len(r.buf)-r.off)
		return 0
	}
	return int(v)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) string() string {
	n := r.count()
	if r.err != nil || n == 0 {
		return ""
	}
	b := r.take(n)
	if r.err == nil && !utf8.Valid(b) {
		r.err = fmt.Errorf("%w: invalid UTF-8 in string at byte %d", ErrBinaryFormat, r.off)
		return ""
	}
	return string(b)
}
