package dfg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpsched/internal/graph"
)

// jsonGraph is the wire/on-disk JSON shape of a Graph — the `dfg` format
// accepted by the CLI tools (-in graph.json) and the mpschedd compile
// service (the "dfg" field of POST /v1/compile and /v1/jobs bodies):
//
//	{
//	  "name":  "my-graph",
//	  "nodes": [
//	    {"name": "a0", "color": "a",
//	     "op": "add",                               // optional semantics
//	     "args": [{"input": "x0"}, {"const": 2}],   // operands, see jsonOperand
//	     "output": "y0"},                           // optional output label
//	    ...
//	  ],
//	  "edges": [[0,1], [0,2], ...]                  // [from,to] node indices
//	}
//
// Node order defines node ids: nodes[i] is node i, and edge/operand
// references index into that order. "color" is the paper's l(n) function
// type and is required; "op" is one of add, sub, mul, neg, pass and may be
// omitted for structural nodes. Decoding is strict — duplicate node names
// (ErrDuplicateName), edge or operand indices outside [0, N)
// (ErrIndexRange), and dependency cycles (ErrCyclic) are rejected with
// typed errors and never panic, so the format is safe to accept from
// untrusted network clients.
//
// This JSON shape is one codec among several: internal/wire is the
// canonical registry of the serving stack's wire formats (wire.JSON,
// wire.Binary — selected per connection via Content-Type). The compact
// binary graph framing the binary codec embeds lives in binary.go
// (AppendBinary/UnmarshalBinary) and is interchangeable with this shape,
// fingerprint for fingerprint.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Name   string        `json:"name"`
	Color  string        `json:"color"`
	Op     string        `json:"op,omitempty"`
	Args   []jsonOperand `json:"args,omitempty"`
	Output string        `json:"output,omitempty"`
}

// jsonOperand is one operand of a node's operation: exactly one of "node"
// (the id of another node whose result feeds this one — a matching edge
// must exist), "input" (a named external input), or "const" (a literal)
// must be set.
type jsonOperand struct {
	Node  *int     `json:"node,omitempty"`
	Input string   `json:"input,omitempty"`
	Const *float64 `json:"const,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: d.Name, Edges: d.g.Edges()}
	for _, n := range d.nodes {
		jn := jsonNode{Name: n.Name, Color: string(n.Color), Output: n.Output}
		if n.Op != OpNone {
			jn.Op = n.Op.String()
		}
		for _, a := range n.Args {
			switch a.Kind {
			case OperandNode:
				id := a.Node
				jn.Args = append(jn.Args, jsonOperand{Node: &id})
			case OperandInput:
				jn.Args = append(jn.Args, jsonOperand{Input: a.Input})
			case OperandConst:
				v := a.Const
				jn.Args = append(jn.Args, jsonOperand{Const: &v})
			}
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("dfg: %w", err)
	}
	fresh := NewGraph(jg.Name)
	for _, jn := range jg.Nodes {
		n := Node{Name: jn.Name, Color: Color(jn.Color), Output: jn.Output}
		if jn.Op != "" {
			op, err := ParseOp(jn.Op)
			if err != nil {
				return err
			}
			n.Op = op
		}
		for _, ja := range jn.Args {
			switch {
			case ja.Node != nil:
				n.Args = append(n.Args, NodeRef(*ja.Node))
			case ja.Input != "":
				n.Args = append(n.Args, InputRef(ja.Input))
			case ja.Const != nil:
				n.Args = append(n.Args, ConstVal(*ja.Const))
			default:
				return fmt.Errorf("dfg: node %s: empty operand", jn.Name)
			}
		}
		if _, err := fresh.AddNode(n); err != nil {
			return err
		}
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= fresh.N() || e[1] < 0 || e[1] >= fresh.N() {
			return fmt.Errorf("dfg: edge %v: %w (graph has %d nodes)", e, ErrIndexRange, fresh.N())
		}
		if err := fresh.AddDep(e[0], e[1]); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	d.replaceWith(fresh)
	return nil
}

// WriteText renders the graph in the line-oriented text format:
//
//	dfg <name>
//	node <name> <color>
//	edge <from-name> <to-name>
//
// Comments start with '#'. Semantics are not carried by the text format;
// use JSON for that.
func WriteText(w io.Writer, d *Graph) error {
	if _, err := fmt.Fprintf(w, "dfg %s\n", d.Name); err != nil {
		return err
	}
	for _, n := range d.nodes {
		if _, err := fmt.Fprintf(w, "node %s %s\n", n.Name, n.Color); err != nil {
			return err
		}
	}
	for _, e := range d.g.Edges() {
		if _, err := fmt.Fprintf(w, "edge %s %s\n", d.NameOf(e[0]), d.NameOf(e[1])); err != nil {
			return err
		}
	}
	return nil
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	d := NewGraph("unnamed")
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "dfg":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dfg text line %d: want 'dfg <name>'", lineNo)
			}
			d.Name = fields[1]
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dfg text line %d: want 'node <name> <color>'", lineNo)
			}
			if _, err := d.AddNode(Node{Name: fields[1], Color: Color(fields[2])}); err != nil {
				return nil, fmt.Errorf("dfg text line %d: %w", lineNo, err)
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dfg text line %d: want 'edge <from> <to>'", lineNo)
			}
			f, ok := d.ID(fields[1])
			if !ok {
				return nil, fmt.Errorf("dfg text line %d: unknown node %q", lineNo, fields[1])
			}
			t, ok := d.ID(fields[2])
			if !ok {
				return nil, fmt.Errorf("dfg text line %d: unknown node %q", lineNo, fields[2])
			}
			if err := d.AddDep(f, t); err != nil {
				return nil, fmt.Errorf("dfg text line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("dfg text line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteDOT renders the DFG in Graphviz DOT format with color-coded shapes
// and nodes ranked by ASAP level, matching the paper's figure layout.
func WriteDOT(w io.Writer, d *Graph) error {
	lv := d.Levels()
	shapeFor := func(c Color) string {
		switch c {
		case "a":
			return "ellipse"
		case "b":
			return "box"
		case "c":
			return "diamond"
		default:
			return "hexagon"
		}
	}
	return graph.WriteDOT(w, d.g, graph.DOTOptions{
		Name:  sanitizeDOTName(d.Name),
		Label: func(i int) string { return d.nodes[i].Name },
		Attrs: func(i int) []string {
			return []string{"shape=" + shapeFor(d.nodes[i].Color)}
		},
		Rank: func(i int) int { return lv.ASAP[i] },
	})
}

func sanitizeDOTName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "G"
	}
	if c := sb.String()[0]; c >= '0' && c <= '9' {
		return "g" + sb.String()
	}
	return sb.String()
}

// FormatLevelTable renders the paper's Table 1: name, ASAP, ALAP, Height per
// node, sorted the way the paper lists them (by ASAP, then ALAP, then name).
func FormatLevelTable(d *Graph) string {
	lv := d.Levels()
	ids := make([]int, d.N())
	for i := range ids {
		ids[i] = i
	}
	sortIDs(ids, func(x, y int) bool {
		if lv.ASAP[x] != lv.ASAP[y] {
			return lv.ASAP[x] < lv.ASAP[y]
		}
		if lv.ALAP[x] != lv.ALAP[y] {
			return lv.ALAP[x] < lv.ALAP[y]
		}
		return d.NameOf(x) < d.NameOf(y)
	})
	var sb strings.Builder
	sb.WriteString("node  asap  alap  height\n")
	for _, id := range ids {
		sb.WriteString(fmt.Sprintf("%-5s %4d  %4d  %6d\n",
			d.NameOf(id), lv.ASAP[id], lv.ALAP[id], lv.Height[id]))
	}
	return sb.String()
}

func sortIDs(ids []int, less func(x, y int) bool) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// ParseFloat is a shared helper for CLI tools reading numeric arguments.
func ParseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
