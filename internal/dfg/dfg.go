// Package dfg defines the data-flow graphs scheduled by the multi-pattern
// scheduler: operation nodes carrying a *color* (the function type a
// reconfigurable ALU must be set to), dependency edges, the paper's
// ASAP/ALAP/Height level attributes, optional arithmetic semantics for
// simulation, serialisation, and validation.
package dfg

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mpsched/internal/graph"
)

// Typed validation errors. Graphs arrive over the network (the mpschedd
// compile service) as well as from trusted construction code, so decoding
// and validation failures are classified for errors.Is: a server can map
// them to 4xx responses and a fuzzer can assert that hostile input is
// rejected rather than accepted or panicking.
var (
	// ErrDuplicateName reports two nodes sharing a name.
	ErrDuplicateName = errors.New("duplicate node name")
	// ErrIndexRange reports an edge or operand referencing a node id
	// outside [0, N).
	ErrIndexRange = errors.New("node index out of range")
	// ErrCyclic reports a dependency cycle.
	ErrCyclic = errors.New("dependency cycle")
)

// Color identifies the function type of a node — the paper's l(n). In the
// Montium examples "a" is addition, "b" subtraction and "c" multiplication,
// but any non-empty string is a valid color.
type Color string

// Op is the optional arithmetic semantics of a node, used by the Montium
// simulator to execute schedules. Structural workloads (random DAGs) leave
// it as OpNone.
type Op int

// Supported node semantics.
const (
	OpNone Op = iota // structural node, no semantics
	OpAdd            // sum of operands
	OpSub            // first operand minus the rest
	OpMul            // product of operands
	OpNeg            // negation of the single operand
	OpPass           // copy of the single operand
)

var opNames = map[Op]string{
	OpNone: "none", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpNeg: "neg", OpPass: "pass",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp converts the textual form back to an Op.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	return OpNone, fmt.Errorf("dfg: unknown op %q", s)
}

// OperandKind discriminates Operand variants.
type OperandKind int

// Operand variants: the result of another node, a named external input, or a
// compile-time constant.
const (
	OperandNode OperandKind = iota
	OperandInput
	OperandConst
)

// Operand is one argument of a node's operation.
type Operand struct {
	Kind  OperandKind
	Node  int     // node id, when Kind == OperandNode
	Input string  // input name, when Kind == OperandInput
	Const float64 // literal, when Kind == OperandConst
}

// NodeRef returns an operand referring to another node's result.
func NodeRef(id int) Operand { return Operand{Kind: OperandNode, Node: id} }

// InputRef returns an operand referring to a named external input.
func InputRef(name string) Operand { return Operand{Kind: OperandInput, Input: name} }

// ConstVal returns a constant operand.
func ConstVal(v float64) Operand { return Operand{Kind: OperandConst, Const: v} }

func (o Operand) String() string {
	switch o.Kind {
	case OperandNode:
		return fmt.Sprintf("n%d", o.Node)
	case OperandInput:
		return "$" + o.Input
	case OperandConst:
		return fmt.Sprintf("%g", o.Const)
	}
	return "?"
}

// Node is one operation of the data-flow graph.
type Node struct {
	Name   string    // unique human-readable name, e.g. "a17"
	Color  Color     // function type, e.g. "a"
	Op     Op        // optional semantics
	Args   []Operand // optional operands matching Op
	Output string    // if non-empty, this node produces the named output
}

// Graph is a data-flow graph: a DAG of colored operation nodes. Construct
// with NewGraph and AddNode/AddDep, or via the Builder.
//
// Level attributes, reachability and the fingerprint are computed lazily
// and cached; any mutation invalidates the caches. The lazy computation is
// mutex-guarded, so a fully-built graph may be read from many goroutines
// (the pipeline's worker pool relies on this); mutating concurrently with
// readers remains the caller's race, as with any Go data structure.
type Graph struct {
	Name  string
	nodes []Node
	g     *graph.Digraph

	byName map[string]int

	mu          sync.Mutex
	levels      *graph.Levels
	reach       *graph.Reachability
	inc         []*graph.BitSet
	fingerprint string
	validated   bool
}

// NewGraph returns an empty DFG with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, g: &graph.Digraph{}, byName: map[string]int{}}
}

// N returns the number of nodes.
func (d *Graph) N() int { return len(d.nodes) }

// M returns the number of dependency edges.
func (d *Graph) M() int { return d.g.M() }

// AddNode appends a node and returns its id. Names must be unique and
// non-empty; colors must be non-empty.
func (d *Graph) AddNode(n Node) (int, error) {
	if n.Name == "" {
		return 0, fmt.Errorf("dfg: node with empty name")
	}
	if n.Color == "" {
		return 0, fmt.Errorf("dfg: node %q with empty color", n.Name)
	}
	if _, dup := d.byName[n.Name]; dup {
		return 0, fmt.Errorf("dfg: %w: %q", ErrDuplicateName, n.Name)
	}
	id := d.g.AddNode()
	d.nodes = append(d.nodes, n)
	d.byName[n.Name] = id
	d.invalidate()
	return id, nil
}

// MustAddNode is AddNode for statically-valid construction code.
func (d *Graph) MustAddNode(n Node) int {
	id, err := d.AddNode(n)
	if err != nil {
		panic(err)
	}
	return id
}

// AddDep inserts the dependency edge from → to (from must execute before
// to). Inserting a duplicate edge is a no-op. Failures are classified:
// ids outside [0, N) wrap ErrIndexRange and a self-loop wraps ErrCyclic.
func (d *Graph) AddDep(from, to int) error {
	if from < 0 || from >= d.N() || to < 0 || to >= d.N() {
		return fmt.Errorf("dfg: edge %d→%d: %w (graph has %d nodes)", from, to, ErrIndexRange, d.N())
	}
	if from == to {
		return fmt.Errorf("dfg: edge %d→%d: %w (self-loop)", from, to, ErrCyclic)
	}
	if err := d.g.AddEdge(from, to); err != nil {
		return fmt.Errorf("dfg: %w", err)
	}
	d.invalidate()
	return nil
}

// MustAddDep is AddDep for statically-valid construction code.
func (d *Graph) MustAddDep(from, to int) {
	if err := d.AddDep(from, to); err != nil {
		panic(err)
	}
}

func (d *Graph) invalidate() {
	d.mu.Lock()
	d.levels = nil
	d.reach = nil
	d.inc = nil
	d.fingerprint = ""
	d.validated = false
	d.mu.Unlock()
}

// Node returns the node with the given id.
func (d *Graph) Node(id int) Node { return d.nodes[id] }

// SetOutput marks node id as producing the named result (used by Evaluate
// and the Montium simulator). Output labels are part of the fingerprint,
// so the cached hash is invalidated; levels and reachability only depend
// on structure and survive.
func (d *Graph) SetOutput(id int, name string) {
	d.nodes[id].Output = name
	d.mu.Lock()
	d.fingerprint = ""
	d.mu.Unlock()
}

// ID looks a node up by name.
func (d *Graph) ID(name string) (int, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// MustID is ID for names that are known to exist.
func (d *Graph) MustID(name string) int {
	id, ok := d.byName[name]
	if !ok {
		panic(fmt.Sprintf("dfg: unknown node %q", name))
	}
	return id
}

// NameOf returns the name of node id.
func (d *Graph) NameOf(id int) string { return d.nodes[id].Name }

// ColorOf returns the color of node id — the paper's l(n).
func (d *Graph) ColorOf(id int) Color { return d.nodes[id].Color }

// Preds returns the direct predecessors of id (graph-owned slice).
func (d *Graph) Preds(id int) []int { return d.g.Preds(id) }

// Succs returns the direct successors of id (graph-owned slice).
func (d *Graph) Succs(id int) []int { return d.g.Succs(id) }

// Digraph exposes the underlying structural graph (read-only use).
func (d *Graph) Digraph() *graph.Digraph { return d.g }

// Levels returns the cached ASAP/ALAP/Height attributes, computing them on
// first use. It panics if the graph is cyclic; use Validate first on
// untrusted input.
func (d *Graph) Levels() *graph.Levels {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.levels == nil {
		lv, err := graph.ComputeLevels(d.g)
		if err != nil {
			panic(fmt.Sprintf("dfg %q: %v", d.Name, err))
		}
		d.levels = lv
	}
	return d.levels
}

// Reach returns the cached transitive-closure matrix, computing it on first
// use. It panics if the graph is cyclic; use Validate first on untrusted
// input.
func (d *Graph) Reach() *graph.Reachability {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reachLocked()
}

func (d *Graph) reachLocked() *graph.Reachability {
	if d.reach == nil {
		r, err := graph.NewReachability(d.g)
		if err != nil {
			panic(fmt.Sprintf("dfg %q: %v", d.Name, err))
		}
		d.reach = r
	}
	return d.reach
}

// Incomparability returns the cached per-node parallelizability bitsets
// (Reach().Incomparability()), computing them on first use. The antichain
// enumerator walks these on every compile, so they are cached alongside
// levels and reachability rather than rebuilt per enumeration. Callers
// must treat the returned sets as read-only. Panics on cyclic graphs; use
// Validate first on untrusted input.
func (d *Graph) Incomparability() []*graph.BitSet {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inc == nil {
		d.inc = d.reachLocked().Incomparability()
	}
	return d.inc
}

// Colors returns the complete color set L of the graph, sorted.
func (d *Graph) Colors() []Color {
	seen := map[Color]bool{}
	for _, n := range d.nodes {
		seen[n.Color] = true
	}
	out := make([]Color, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ColorCounts returns how many nodes carry each color.
func (d *Graph) ColorCounts() map[Color]int {
	out := map[Color]int{}
	for _, n := range d.nodes {
		out[n.Color]++
	}
	return out
}

// NodesByColor returns the ids of all nodes with the given color, ascending.
func (d *Graph) NodesByColor(c Color) []int {
	var out []int
	for id, n := range d.nodes {
		if n.Color == c {
			out = append(out, id)
		}
	}
	return out
}

// Names returns all node names in id order.
func (d *Graph) Names() []string {
	out := make([]string, len(d.nodes))
	for i, n := range d.nodes {
		out[i] = n.Name
	}
	return out
}

// Clone returns a deep copy sharing no mutable state with the original.
func (d *Graph) Clone() *Graph {
	c := NewGraph(d.Name)
	for _, n := range d.nodes {
		nn := n
		nn.Args = append([]Operand(nil), n.Args...)
		c.MustAddNode(nn)
	}
	for _, e := range d.g.Edges() {
		c.MustAddDep(e[0], e[1])
	}
	return c
}

// replaceWith moves another graph's content into d (used by UnmarshalJSON;
// field-wise so d's mutex is not copied), resetting the lazy caches.
func (d *Graph) replaceWith(src *Graph) {
	d.Name = src.Name
	d.nodes = src.nodes
	d.g = src.g
	d.byName = src.byName
	d.invalidate()
}

// Fingerprint returns a content hash of the graph: nodes (name, color,
// semantics, operands, output) in id order plus the dependency edge list.
// Two graphs share a fingerprint exactly when they are identical as
// labelled DAGs, so every derived result — levels, antichain census,
// selection, schedule, allocation — is interchangeable between them. The
// graph-level Name is deliberately excluded: it never influences results.
//
// The hash is cached and invalidated on mutation, like Levels and Reach.
func (d *Graph) Fingerprint() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fingerprint == "" {
		h := sha256.New()
		fmt.Fprintf(h, "v1 n=%d m=%d\n", d.N(), d.M())
		for _, n := range d.nodes {
			fmt.Fprintf(h, "node %q %q %d %q", n.Name, n.Color, n.Op, n.Output)
			for _, a := range n.Args {
				fmt.Fprintf(h, " %d:%d:%q:%g", a.Kind, a.Node, a.Input, a.Const)
			}
			fmt.Fprintln(h)
		}
		edges := d.g.Edges()
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		for _, e := range edges {
			fmt.Fprintf(h, "edge %d %d\n", e[0], e[1])
		}
		d.fingerprint = hex.EncodeToString(h.Sum(nil))
	}
	return d.fingerprint
}

// Validate checks structural well-formedness: acyclicity, operand/edge
// consistency (every node-operand has a matching dependency edge), and
// operand arity for nodes that carry semantics.
//
// A passing validation is cached like the other lazy attributes and
// invalidated on mutation, so compiling a shared graph many times (the
// daemon's spec cache, batch envelopes) pays the topological check once.
func (d *Graph) Validate() error {
	d.mu.Lock()
	ok := d.validated
	d.mu.Unlock()
	if ok {
		return nil
	}
	if err := d.validate(); err != nil {
		return err
	}
	d.mu.Lock()
	d.validated = true
	d.mu.Unlock()
	return nil
}

func (d *Graph) validate() error {
	if _, err := graph.TopoSort(d.g); err != nil {
		return fmt.Errorf("dfg %q: %w: %v", d.Name, ErrCyclic, err)
	}
	for id, n := range d.nodes {
		// Operand index range is checked for every node — including
		// structural ones without semantics — because out-of-range ids
		// in untrusted input would otherwise surface as panics far from
		// the decode site.
		for _, a := range n.Args {
			if a.Kind == OperandNode && (a.Node < 0 || a.Node >= len(d.nodes)) {
				return fmt.Errorf("dfg %q: node %s: %w: operand references node %d of %d",
					d.Name, n.Name, ErrIndexRange, a.Node, len(d.nodes))
			}
		}
		if n.Op == OpNone {
			continue
		}
		switch n.Op {
		case OpNeg, OpPass:
			if len(n.Args) != 1 {
				return fmt.Errorf("dfg %q: node %s: %s wants 1 operand, has %d",
					d.Name, n.Name, n.Op, len(n.Args))
			}
		default:
			if len(n.Args) < 2 {
				return fmt.Errorf("dfg %q: node %s: %s wants ≥2 operands, has %d",
					d.Name, n.Name, n.Op, len(n.Args))
			}
		}
		for _, a := range n.Args {
			if a.Kind != OperandNode {
				continue
			}
			if !d.g.HasEdge(a.Node, id) {
				return fmt.Errorf("dfg %q: node %s uses n%d without a dependency edge",
					d.Name, n.Name, a.Node)
			}
		}
	}
	return nil
}

// String summarises the graph.
func (d *Graph) String() string {
	return fmt.Sprintf("dfg %q: %d nodes, %d edges, colors %v", d.Name, d.N(), d.M(), d.Colors())
}
