package loadgen

import (
	"context"
	"errors"
	"net/http"

	"mpsched/internal/dfg"
	"mpsched/internal/patsel"
	"mpsched/internal/pipeline"
	"mpsched/internal/server"
	"mpsched/internal/server/client"
)

// Item is one compile the generators replay: a resolved graph for the
// in-process path and the spec string that regenerates the identical graph
// on a remote daemon. Both paths compile the same fingerprint — the corpus
// generators are deterministic — so local and remote measurements are of
// the same work.
type Item struct {
	// Spec is the workload spec (e.g. "random:seed=7,n=96,colors=3").
	Spec string
	// Graph is the locally resolved graph; nil for remote-only items.
	Graph *dfg.Graph
	// Select parameterises pattern selection for this item.
	Select patsel.Config
}

// Reply is the classified outcome of one request. Exactly one of the
// success (Err == nil, Rejected false), rejected (Rejected true) and error
// (Err != nil) states holds; CacheHit is meaningful only on success.
type Reply struct {
	// Err is a hard failure: a failed compile, a non-2xx/non-429 response,
	// a transport error.
	Err error
	// Rejected marks backpressure (HTTP 429 queue-full) — expected under
	// overload and counted separately from errors.
	Rejected bool
	// CacheHit reports the compile was served from the result cache.
	CacheHit bool
}

// Target executes one compile per Do call. Implementations must be safe
// for concurrent use — the generators call Do from many goroutines.
type Target interface {
	// Name labels the target in results ("local", or the daemon URL).
	Name() string
	// Do runs one compile. Latency is measured by the caller.
	Do(ctx context.Context, it Item) Reply
}

// LocalTarget drives an in-process pipeline.Compiler — the zero-network
// baseline every remote measurement is compared against.
type LocalTarget struct {
	c      *pipeline.Compiler
	bypass bool
}

// NewLocalTarget builds an in-process target. With caching on (the
// default, mirroring the daemon) a warm run measures the cache path; with
// bypass every request pays the full census → select → schedule cost.
func NewLocalTarget(opts pipeline.Options, bypassCache bool) *LocalTarget {
	if opts.Cache == nil && !bypassCache {
		opts.Cache = pipeline.NewShardedCache(0, 0)
	}
	return &LocalTarget{c: pipeline.NewCompiler(opts), bypass: bypassCache}
}

// Name implements Target.
func (t *LocalTarget) Name() string { return "local" }

// Do implements Target.
func (t *LocalTarget) Do(ctx context.Context, it Item) Reply {
	if it.Graph == nil {
		return Reply{Err: errors.New("loadgen: item has no resolved graph for the local target")}
	}
	spec := pipeline.NewSpec(it.Graph,
		pipeline.WithName(it.Spec),
		pipeline.WithSelect(it.Select))
	if t.bypass {
		spec.Cache = pipeline.CacheBypass
	}
	rep, err := t.c.Compile(ctx, spec)
	if err != nil {
		return Reply{Err: err}
	}
	return Reply{CacheHit: rep.CacheHit}
}

// RemoteTarget drives a live mpschedd over its /v1/compile endpoint via
// the typed client.
type RemoteTarget struct {
	c *client.Client
}

// NewRemoteTarget builds a target for the daemon at baseURL.
func NewRemoteTarget(c *client.Client) *RemoteTarget { return &RemoteTarget{c: c} }

// Name implements Target.
func (t *RemoteTarget) Name() string { return t.c.BaseURL() }

// compileRequest lowers an Item to the wire request both remote targets
// send: spec-addressed (the daemon regenerates the identical graph) with
// the item's selection knobs spelled out.
func compileRequest(it Item) server.CompileRequest {
	return server.CompileRequest{
		Workload: it.Spec,
		Select: &server.SelectConfig{
			C:       it.Select.C,
			Pdef:    it.Select.Pdef,
			Span:    it.Select.MaxSpan,
			Epsilon: it.Select.Epsilon,
			Alpha:   it.Select.Alpha,
		},
	}
}

// Do implements Target.
func (t *RemoteTarget) Do(ctx context.Context, it Item) Reply {
	resp, err := t.c.Compile(ctx, compileRequest(it))
	if err != nil {
		// Only 429 is backpressure; everything else — including 503 from a
		// draining daemon — is a hard failure, matching the CI gate's
		// "any non-2xx/non-429 response fails" contract.
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
			return Reply{Rejected: true}
		}
		return Reply{Err: err}
	}
	return Reply{CacheHit: resp.CacheHit}
}
