package loadgen

import (
	"reflect"
	"strings"
	"testing"

	"mpsched/internal/patsel"
)

func TestParseScenarioSingleton(t *testing.T) {
	sc, err := ParseScenario("random:seed=1,n=64")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Members) != 1 || sc.Members[0] != "random:seed=1,n=64" {
		t.Fatalf("singleton members = %v", sc.Members)
	}
	if _, err := ParseScenario("nonsense:1"); err == nil {
		t.Fatal("unknown family accepted")
	}
	// Parameter errors pass the cheap parse-time family check and surface
	// at Resolve, before any storm starts.
	sc, err = ParseScenario("random:seed=x")
	if err != nil {
		t.Fatalf("family-valid spec rejected at parse time: %v", err)
	}
	if _, err := sc.Resolve(patsel.Config{}); err == nil {
		t.Fatal("bad parameter accepted at Resolve")
	}
}

func TestParseScenarioMixDeterministic(t *testing.T) {
	a, err := ParseScenario("mix:seed=1,count=8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScenario("mix:seed=1,count=8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatalf("same mix spec, different members:\n%v\n%v", a.Members, b.Members)
	}
	if len(a.Members) != 8 {
		t.Fatalf("count=8 produced %d members", len(a.Members))
	}
	c, err := ParseScenario("mix:seed=2,count=8")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Members, c.Members) {
		t.Fatal("different seeds drew identical blends")
	}
	// Every member must itself be a resolvable workload spec.
	items, err := a.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Graph == nil || it.Graph.N() == 0 {
			t.Fatalf("member %d (%s) resolved empty", i, it.Spec)
		}
		if it.Select.Pdef != 4 {
			t.Fatalf("member %d: Pdef defaulted to %d, want 4", i, it.Select.Pdef)
		}
	}
}

func TestParseScenarioMixTiers(t *testing.T) {
	sc, err := ParseScenario("mix:seed=3,count=12,tiers=chain+wide")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sc.Members {
		if !strings.HasPrefix(m, "chain:") && !strings.HasPrefix(m, "wide:") {
			t.Fatalf("tiers=chain+wide drew member %q", m)
		}
	}
	for _, bad := range []string{
		"mix:seed=x",
		"mix:count=0",
		"mix:count=99999",
		"mix:tiers=enormous",
		"mix:flavor=salty",
		"mix:seed",
		"mix:seed=1,count=8,count=100", // silent last-wins would measure the wrong fleet
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("%q accepted, want error", bad)
		}
	}
}

// TestMixMembersDeterministicFingerprints: resolving the same mix twice
// yields byte-identical graphs, member by member — the property that makes
// a remote daemon and a local run compile the same fleet.
func TestMixMembersDeterministicFingerprints(t *testing.T) {
	resolve := func() []string {
		sc, err := ParseScenario("mix:seed=9,count=6")
		if err != nil {
			t.Fatal(err)
		}
		items, err := sc.Resolve(patsel.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fps := make([]string, len(items))
		for i, it := range items {
			fps[i] = it.Graph.Fingerprint()
		}
		return fps
	}
	if a, b := resolve(), resolve(); !reflect.DeepEqual(a, b) {
		t.Fatalf("mix fingerprints drifted:\n%v\n%v", a, b)
	}
}
