package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mpsched/internal/server"
	"mpsched/internal/server/client"
)

// BatchTarget drives a live mpschedd over /v1/batch: concurrent Do calls
// coalesce into shared envelopes, so B compiles ride one HTTP round trip
// instead of B. Callers still see the one-call-one-Reply contract —
// batching is invisible to the generators, which is the point: the same
// closed/open-loop storm measures the batched wire without changing its
// own shape.
//
// Coalescing: dispatcher goroutines pull calls off a shared channel; the
// first call of an envelope waits at most batchLinger for companions, so
// a sparse load degenerates gracefully to singleton envelopes instead of
// stalling. Close releases the dispatchers (pending calls complete).
type BatchTarget struct {
	c     *client.Client
	batch int
	calls chan batchCall
	wg    sync.WaitGroup
	once  sync.Once
}

type batchCall struct {
	ctx   context.Context
	item  Item
	reply chan Reply
}

// batchLinger bounds how long an envelope's first call waits for
// companions: long enough that a storm fills envelopes, short enough to
// be invisible next to a compile.
const batchLinger = 200 * time.Microsecond

// NewBatchTarget builds a batching target: envelopes of up to batch
// jobs, assembled by `dispatchers` concurrent envelope builders (≤ 1 is
// clamped to 1; a good value is ~2× clients/batch so a slow envelope
// never idles the storm).
func NewBatchTarget(c *client.Client, batch, dispatchers int) *BatchTarget {
	if batch < 1 {
		batch = 1
	}
	if dispatchers < 1 {
		dispatchers = 1
	}
	t := &BatchTarget{c: c, batch: batch, calls: make(chan batchCall)}
	for i := 0; i < dispatchers; i++ {
		t.wg.Add(1)
		go t.dispatch()
	}
	return t
}

// Name implements Target.
func (t *BatchTarget) Name() string {
	return fmt.Sprintf("%s (%s, batch %d)", t.c.BaseURL(), t.c.Codec().Name(), t.batch)
}

// Do implements Target: enqueue the call and wait for its item's Reply.
func (t *BatchTarget) Do(ctx context.Context, it Item) Reply {
	reply := make(chan Reply, 1)
	select {
	case t.calls <- batchCall{ctx: ctx, item: it, reply: reply}:
	case <-ctx.Done():
		return Reply{Err: ctx.Err()}
	}
	select {
	case r := <-reply:
		return r
	case <-ctx.Done():
		return Reply{Err: ctx.Err()}
	}
}

// Close stops the dispatchers after in-flight envelopes finish. Do must
// not be called after Close.
func (t *BatchTarget) Close() {
	t.once.Do(func() {
		close(t.calls)
		t.wg.Wait()
	})
}

func (t *BatchTarget) dispatch() {
	defer t.wg.Done()
	for first := range t.calls {
		calls := append(make([]batchCall, 0, t.batch), first)
		if t.batch > 1 {
			var timer *time.Timer
		gather:
			for len(calls) < t.batch {
				// Fast path: under load the next call is already queued, and
				// a nonblocking receive is much cheaper than a two-case
				// select. The linger timer is armed lazily, only when the
				// queue actually runs dry.
				select {
				case c, ok := <-t.calls:
					if !ok {
						break gather
					}
					calls = append(calls, c)
					continue
				default:
				}
				if timer == nil {
					timer = time.NewTimer(batchLinger)
				}
				select {
				case c, ok := <-t.calls:
					if !ok {
						break gather
					}
					calls = append(calls, c)
				case <-timer.C:
					break gather
				}
			}
			if timer != nil {
				timer.Stop()
			}
		}
		t.flush(calls)
	}
}

func (t *BatchTarget) flush(calls []batchCall) {
	reqs := make([]server.CompileRequest, len(calls))
	for i := range calls {
		reqs[i] = compileRequest(calls[i].item)
	}
	// Calls in one storm share the generator's context, so the first
	// call's context stands for the envelope.
	items, err := t.c.CompileBatch(calls[0].ctx, reqs)
	if err != nil {
		for i := range calls {
			calls[i].reply <- Reply{Err: err}
		}
		return
	}
	// CompileBatch guarantees exactly one item per request index.
	for _, it := range items {
		calls[it.Index].reply <- classifyItem(it)
	}
}

// classifyItem maps a batch item's per-job status onto the Reply
// states, mirroring RemoteTarget.Do's classification of HTTP statuses.
func classifyItem(it server.BatchItem) Reply {
	switch it.Status {
	case http.StatusOK:
		return Reply{CacheHit: it.Result != nil && it.Result.CacheHit}
	case http.StatusTooManyRequests:
		return Reply{Rejected: true}
	default:
		return Reply{Err: fmt.Errorf("loadgen: batch item status %d: %s", it.Status, it.Error)}
	}
}
