package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpsched/internal/patsel"
	"mpsched/internal/pipeline"
	"mpsched/internal/server"
	"mpsched/internal/server/client"
	"mpsched/internal/wire"
)

// stubTarget answers instantly with a scripted reply sequence.
type stubTarget struct {
	calls   atomic.Int64
	replies []Reply // cycled; empty means all-success
	delay   time.Duration
}

func (s *stubTarget) Name() string { return "stub" }

func (s *stubTarget) Do(ctx context.Context, it Item) Reply {
	n := s.calls.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if len(s.replies) == 0 {
		return Reply{}
	}
	return s.replies[int(n-1)%len(s.replies)]
}

func testItems() []Item {
	return []Item{{Spec: "stub:1"}, {Spec: "stub:2"}}
}

func TestClosedLoopCounts(t *testing.T) {
	st := &stubTarget{replies: []Reply{
		{},                             // success
		{CacheHit: true},               // success, cached
		{Rejected: true},               // backpressure
		{Err: errors.New("boom such")}, // hard failure
	}}
	res, err := Run(context.Background(), st, testItems(), Config{
		Scenario: "stub-mix",
		Mode:     Closed,
		Clients:  4,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if got := res.Success + res.Errors + res.Rejected; got != res.Requests {
		t.Fatalf("outcome classes sum to %d, issued %d", got, res.Requests)
	}
	if res.Errors == 0 || res.Rejected == 0 || res.CacheHits == 0 {
		t.Fatalf("scripted outcomes missing: %+v", res)
	}
	if res.Hist.Count() != uint64(res.Success+res.Rejected) {
		t.Fatalf("histogram holds %d, want successes+rejections %d", res.Hist.Count(), res.Success+res.Rejected)
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	if res.Scenario != "stub-mix" || res.Target != "stub" || res.Mode != "closed" {
		t.Fatalf("labels wrong: %+v", res)
	}
	if len(res.ErrorSamples) == 0 || !strings.Contains(res.ErrorSamples[0], "boom") {
		t.Fatalf("error samples missing: %v", res.ErrorSamples)
	}
	if r := res.CacheHitRatio(); r <= 0 || r > 1 {
		t.Fatalf("cache hit ratio %v out of range", r)
	}
}

func TestOpenLoopUniformRate(t *testing.T) {
	st := &stubTarget{}
	cfg := Config{
		Mode:     Open,
		Arrival:  Uniform,
		RPS:      200,
		Clients:  8,
		Duration: 500 * time.Millisecond,
	}
	res, err := Run(context.Background(), st, testItems(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~100 arrivals scheduled; allow wide slack for CI jitter but reject
	// order-of-magnitude drift in either direction.
	if res.Requests < 50 || res.Requests > 150 {
		t.Fatalf("uniform 200 rps for 500ms issued %d requests, want ~100", res.Requests)
	}
	if res.Errors != 0 || res.Success != res.Requests {
		t.Fatalf("stub run had failures: %+v", res)
	}
}

func TestOpenLoopPoissonIssues(t *testing.T) {
	st := &stubTarget{}
	res, err := Run(context.Background(), st, testItems(), Config{
		Mode: Open, Arrival: Poisson, RPS: 500, Clients: 8, Seed: 7,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("poisson schedule issued nothing")
	}
	if res.Hist.Quantile(0.5) <= 0 {
		t.Fatal("empty latency histogram")
	}
}

func TestOpenLoopChargesQueueing(t *testing.T) {
	// One slot, slow target, fast arrivals: intended-arrival accounting
	// must charge the queueing delay, so p99 ≫ the per-request delay.
	st := &stubTarget{delay: 20 * time.Millisecond}
	res, err := Run(context.Background(), st, testItems(), Config{
		Mode: Open, Arrival: Uniform, RPS: 200, Clients: 1,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hist.Max() < 50*time.Millisecond {
		t.Fatalf("max latency %v does not include queueing delay", res.Hist.Max())
	}
}

// TestOpenLoopOverloadBounded: when the target falls a full queue behind
// the arrival schedule, excess arrivals are recorded as hard failures
// instead of buffering without bound — the harness must not hoard a
// goroutine (or queue entry) per scheduled arrival forever.
func TestOpenLoopOverloadBounded(t *testing.T) {
	st := &stubTarget{delay: 100 * time.Millisecond}
	res, err := Run(context.Background(), st, testItems(), Config{
		Mode: Open, Arrival: Uniform, RPS: 1000, Clients: 1,
		Duration: 1300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatalf("no overload errors despite a saturated 1-client target: %+v", res)
	}
	if got := res.Success + res.Errors + res.Rejected; got != res.Requests {
		t.Fatalf("outcome classes sum to %d, issued %d", got, res.Requests)
	}
	if len(res.ErrorSamples) == 0 || !strings.Contains(res.ErrorSamples[0], "queue full") {
		t.Fatalf("overload not surfaced in samples: %v", res.ErrorSamples)
	}
}

func TestRunValidation(t *testing.T) {
	st := &stubTarget{}
	if _, err := Run(context.Background(), st, testItems(), Config{Mode: Open, Duration: time.Second}); err == nil {
		t.Error("open loop without RPS accepted")
	}
	if _, err := Run(context.Background(), st, testItems(), Config{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(context.Background(), st, nil, Config{Duration: time.Second}); err == nil {
		t.Error("empty item list accepted")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, &stubTarget{}, testItems(), Config{Clients: 2, Duration: 10 * time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run")
	}
}

func TestParseHelpers(t *testing.T) {
	if m, err := ParseMode("closed"); err != nil || m != Closed {
		t.Errorf("ParseMode closed: %v %v", m, err)
	}
	if m, err := ParseMode("open"); err != nil || m != Open {
		t.Errorf("ParseMode open: %v %v", m, err)
	}
	if _, err := ParseMode("sideways"); err == nil {
		t.Error("ParseMode accepted sideways")
	}
	if a, err := ParseArrival("poisson"); err != nil || a != Poisson {
		t.Errorf("ParseArrival poisson: %v %v", a, err)
	}
	if a, err := ParseArrival("uniform"); err != nil || a != Uniform {
		t.Errorf("ParseArrival uniform: %v %v", a, err)
	}
	if _, err := ParseArrival("fractal"); err == nil {
		t.Error("ParseArrival accepted fractal")
	}
}

// TestLocalTargetStorm drives the real staged compiler through a short
// closed-loop storm over a mixed scenario — the in-process half of the
// mpschedbench acceptance path.
func TestLocalTargetStorm(t *testing.T) {
	sc, err := ParseScenario("mix:seed=3,count=4,tiers=small+chain")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewLocalTarget(pipeline.Options{}, false), items, Config{
		Scenario: sc.Spec,
		Mode:     Closed,
		Clients:  4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("compile errors under storm: %v", res.ErrorSamples)
	}
	if res.Success == 0 || res.Throughput <= 0 {
		t.Fatalf("no successful compiles: %+v", res)
	}
	if res.CacheHits == 0 {
		t.Fatalf("warm repeats never hit the cache: %+v", res)
	}
	if res.Hist.Quantile(0.5) <= 0 || res.Hist.Quantile(0.99) < res.Hist.Quantile(0.5) {
		t.Fatalf("implausible quantiles: p50=%v p99=%v", res.Hist.Quantile(0.5), res.Hist.Quantile(0.99))
	}
}

// TestLocalTargetCacheBypass: with bypass every request pays the full
// compile, so no cache hits appear even on repeats.
func TestLocalTargetCacheBypass(t *testing.T) {
	sc, err := ParseScenario("random:seed=5,n=24,colors=2")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewLocalTarget(pipeline.Options{}, true), items, Config{
		Mode: Closed, Clients: 2, Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Fatalf("bypass still hit the cache %d times", res.CacheHits)
	}
	if res.Success == 0 {
		t.Fatal("no successful compiles")
	}
}

// TestRemoteTargetStorm runs the same storm against a real server over
// HTTP — the remote half of the mpschedbench acceptance path, minus the
// TCP daemon (CI covers that).
func TestRemoteTargetStorm(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	sc, err := ParseScenario("random:seed=1,n=32,colors=2")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewRemoteTarget(client.New(ts.URL)), items, Config{
		Scenario: sc.Spec,
		Mode:     Closed,
		Clients:  4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("remote storm errors: %v", res.ErrorSamples)
	}
	if res.Success == 0 {
		t.Fatal("no successful remote compiles")
	}
	if res.CacheHits == 0 {
		t.Fatal("server cache never warmed over repeats")
	}
	if res.Target != ts.URL {
		t.Fatalf("target label %q, want %q", res.Target, ts.URL)
	}
}

// TestBatchTargetStorm runs the storm through the batching target over
// the binary codec — the high-throughput serving path mpschedbench's
// -codec binary -batch N flags select. Same success/cache expectations
// as the plain remote storm: batching must be invisible to results.
func TestBatchTargetStorm(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	sc, err := ParseScenario("random:seed=1,n=32,colors=2")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bt := NewBatchTarget(client.New(ts.URL).WithCodec(wire.Binary), 4, 2)
	defer bt.Close()
	res, err := Run(context.Background(), bt, items, Config{
		Scenario: sc.Spec,
		Mode:     Closed,
		Clients:  8,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("batched storm errors: %v", res.ErrorSamples)
	}
	if res.Success == 0 {
		t.Fatal("no successful batched compiles")
	}
	if res.CacheHits == 0 {
		t.Fatal("server cache never warmed over repeats")
	}
}

// TestBatchTargetClassifies pins per-item classification through the
// batch path: admitted jobs succeed while over-capacity jobs in the same
// envelope come back Rejected, not as errors.
func TestBatchTargetClassifies(t *testing.T) {
	srv := server.New(server.Options{QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	bt := NewBatchTarget(client.New(ts.URL), 3, 1)
	defer bt.Close()

	// Three concurrent calls coalesce into one envelope against capacity 1:
	// one admitted, two rejected.
	replies := make(chan Reply, 3)
	for i := 0; i < 3; i++ {
		go func() {
			replies <- bt.Do(context.Background(), Item{Spec: "3dft", Select: patsel.Config{Pdef: 2, C: 2, MaxSpan: -1}})
		}()
	}
	ok, rejected := 0, 0
	for i := 0; i < 3; i++ {
		switch rep := <-replies; {
		case rep.Err != nil:
			t.Fatalf("hard failure through batch path: %v", rep.Err)
		case rep.Rejected:
			rejected++
		default:
			ok++
		}
	}
	// The linger window makes coalescing probabilistic from the caller's
	// side: at least one job must land either way, and nothing may error.
	if ok < 1 {
		t.Fatalf("admitted %d, rejected %d; want at least one success", ok, rejected)
	}
}

// TestRemoteTargetClassifies429 pins the backpressure classification: a
// 429 from the daemon is Rejected, not an error.
func TestRemoteTargetClassifies429(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer ts.Close()
	rt := NewRemoteTarget(client.New(ts.URL))
	rep := rt.Do(context.Background(), Item{Spec: "3dft"})
	if rep.Err != nil || !rep.Rejected {
		t.Fatalf("429 classified as %+v, want Rejected", rep)
	}
	// Every other non-2xx — including 503 from a draining daemon — stays a
	// hard failure, per the CI gate's non-2xx/non-429 contract.
	for _, status := range []int{http.StatusBadRequest, http.StatusServiceUnavailable, http.StatusInternalServerError} {
		ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"error":"nope"}`))
		}))
		rep = NewRemoteTarget(client.New(ts2.URL)).Do(context.Background(), Item{Spec: "3dft"})
		ts2.Close()
		if rep.Err == nil || rep.Rejected {
			t.Fatalf("%d classified as %+v, want Err", status, rep)
		}
	}
}
