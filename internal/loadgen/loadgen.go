// Package loadgen is the load-generation harness: it drives a compile
// target — an in-process pipeline.Compiler or a remote mpschedd — with a
// reproducible storm of scenario-corpus workloads and records the
// latency/throughput/error profile the CI perf gates and the repo's
// BENCH_*.json trajectory are built on.
//
// Two generator shapes are supported. Closed-loop runs N clients
// back-to-back: offered load adapts to the target's speed, measuring
// capacity. Open-loop fires requests on a fixed arrival schedule (uniform
// or Poisson at a target RPS) regardless of how the target keeps up:
// latency is measured from each request's *scheduled* arrival, so queueing
// delay under overload is charged to the target rather than silently
// dropped (the coordinated-omission trap).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the generator shape.
type Mode int

const (
	// Closed runs Clients workers back-to-back (capacity measurement).
	Closed Mode = iota
	// Open fires on a fixed arrival schedule at RPS (latency measurement).
	Open
)

func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// ParseMode maps the CLI names to modes.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "closed":
		return Closed, nil
	case "open":
		return Open, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want closed or open)", s)
}

// Arrival selects the open-loop inter-arrival distribution.
type Arrival int

const (
	// Poisson draws exponential inter-arrival gaps (memoryless traffic,
	// the standard open-workload model).
	Poisson Arrival = iota
	// Uniform spaces arrivals exactly 1/RPS apart.
	Uniform
)

func (a Arrival) String() string {
	if a == Uniform {
		return "uniform"
	}
	return "poisson"
}

// ParseArrival maps the CLI names to arrival processes.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "uniform":
		return Uniform, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (want poisson or uniform)", s)
}

// Config parameterises one load run.
type Config struct {
	// Scenario labels the run in the Result (typically the scenario spec).
	Scenario string
	// Mode is the generator shape (default Closed).
	Mode Mode
	// Clients is the closed-loop worker count, and the open-loop in-flight
	// cap. Default 1.
	Clients int
	// RPS is the open-loop target arrival rate (required in Open mode).
	RPS float64
	// Arrival is the open-loop inter-arrival distribution.
	Arrival Arrival
	// Duration is how long new requests are issued (required). In-flight
	// requests run to completion past the deadline and are still recorded.
	Duration time.Duration
	// Seed drives the Poisson arrival draws (default 1). The item replay
	// order is round-robin and needs no seed.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Duration <= 0 {
		return c, errors.New("loadgen: duration must be positive")
	}
	if c.Mode == Open && c.RPS <= 0 {
		return c, errors.New("loadgen: open-loop mode needs a positive RPS")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// maxErrorSamples bounds how many distinct failure strings a Result keeps.
const maxErrorSamples = 5

// Result is the outcome of one load run.
type Result struct {
	// Scenario, Target and Mode identify the run.
	Scenario string
	Target   string
	Mode     string
	// Clients and RPS echo the generator configuration.
	Clients int
	RPS     float64
	// Elapsed is the wall-clock span from first issue to last completion.
	Elapsed time.Duration
	// Requests counts every issued request; Success the completed
	// compiles; Errors the hard failures; Rejected the 429 backpressure
	// responses; CacheHits the successes served from cache.
	Requests, Success, Errors, Rejected, CacheHits int64
	// Throughput is Success per second of Elapsed.
	Throughput float64
	// Hist is the latency histogram over successful and rejected requests
	// (a fast 429 is a real response; errors are excluded so a storm of
	// instant failures cannot fake a good p99).
	Hist *Histogram
	// ErrorSamples holds up to five distinct failure strings for triage.
	ErrorSamples []string
}

// CacheHitRatio returns cache hits over successes, in [0, 1].
func (r *Result) CacheHitRatio() float64 {
	if r.Success == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Success)
}

// collector accumulates outcomes from concurrent workers.
type collector struct {
	mu      sync.Mutex
	hist    Histogram
	success int64
	errs    int64
	reject  int64
	hits    int64
	samples []string
}

func (c *collector) record(latency time.Duration, rep Reply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case rep.Err != nil:
		c.errs++
		if len(c.samples) < maxErrorSamples {
			s := rep.Err.Error()
			for _, prev := range c.samples {
				if prev == s {
					return
				}
			}
			c.samples = append(c.samples, s)
		}
		return
	case rep.Rejected:
		c.reject++
	default:
		c.success++
		if rep.CacheHit {
			c.hits++
		}
	}
	c.hist.Record(latency)
}

// Run executes one load run of items against t. The context cancels the
// whole run early (its error is returned); the configured duration ends it
// normally. Items are replayed round-robin so every member of a mixed
// scenario is exercised evenly.
func Run(ctx context.Context, t Target, items []Item, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, errors.New("loadgen: no items to replay")
	}

	col := &collector{}
	start := time.Now()
	var issued int64
	switch cfg.Mode {
	case Open:
		issued = runOpen(ctx, t, items, cfg, col)
	default:
		issued = runClosed(ctx, t, items, cfg, col)
	}
	elapsed := time.Since(start)

	res := &Result{
		Scenario:     cfg.Scenario,
		Target:       t.Name(),
		Mode:         cfg.Mode.String(),
		Clients:      cfg.Clients,
		RPS:          cfg.RPS,
		Elapsed:      elapsed,
		Requests:     issued,
		Success:      col.success,
		Errors:       col.errs,
		Rejected:     col.reject,
		CacheHits:    col.hits,
		Hist:         &col.hist,
		ErrorSamples: col.samples,
	}
	if elapsed > 0 {
		res.Throughput = float64(col.success) / elapsed.Seconds()
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runClosed drives Clients workers back-to-back until the deadline. Each
// worker checks the deadline before issuing, then lets the request run to
// completion — no request is cancelled mid-compile, so the tail of the
// histogram is real latency, not shutdown noise.
func runClosed(ctx context.Context, t Target, items []Item, cfg Config, col *collector) int64 {
	deadline := time.Now().Add(cfg.Duration)
	var next atomic.Int64
	var issued atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				it := items[int(next.Add(1)-1)%len(items)]
				issued.Add(1)
				t0 := time.Now()
				rep := t.Do(ctx, it)
				col.record(time.Since(t0), rep)
			}
		}()
	}
	wg.Wait()
	return issued.Load()
}

// arrival is one scheduled open-loop request awaiting a worker.
type arrival struct {
	scheduled time.Time
	item      Item
}

// errOverload is recorded for arrivals the pending queue could not hold:
// the target has fallen so far behind the schedule that the harness would
// otherwise hoard unbounded state. Counting them as hard failures keeps
// the outcome classes summing to Requests and makes -strict runs fail
// loudly instead of the generator OOMing mid-measurement.
var errOverload = errors.New("loadgen: pending-arrival queue full (target cannot keep up with the schedule)")

// runOpen fires requests on the configured arrival schedule until the
// deadline, with Clients workers executing them. Latency is measured from
// the scheduled arrival, so time spent queued behind a busy worker counts
// against the target (intended-arrival accounting). The pending queue is
// bounded: arrivals beyond it are recorded as errOverload rather than
// buffered without limit.
func runOpen(ctx context.Context, t Target, items []Item, cfg Config, col *collector) int64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gap := func() time.Duration {
		if cfg.Arrival == Uniform {
			return time.Duration(float64(time.Second) / cfg.RPS)
		}
		return time.Duration(rng.ExpFloat64() / cfg.RPS * float64(time.Second))
	}

	// Enough backlog to ride out latency spikes (a full second at the
	// offered rate when that fits), small enough to bound harness memory —
	// the cap matters because depth is allocated up front and an absurd
	// -rps must not OOM the harness before the first request.
	depth := int(cfg.RPS)
	if min := 64 * cfg.Clients; depth < min {
		depth = min
	}
	if depth > 1<<20 {
		depth = 1 << 20
	}
	pending := make(chan arrival, depth)
	// stopping flips once the dispatch window closes: workers then skip
	// (rather than execute) whatever is still queued, so a run ends at
	// deadline + one in-flight request instead of deadline + backlog.
	// Skipped arrivals were never attempted and are subtracted from the
	// issued count below.
	var stopping atomic.Bool
	var skipped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range pending {
				if stopping.Load() {
					skipped.Add(1)
					continue
				}
				rep := t.Do(ctx, a.item)
				col.record(time.Since(a.scheduled), rep)
			}
		}()
	}

	deadline := time.Now().Add(cfg.Duration)
	timer := time.NewTimer(0)
	defer timer.Stop()
	var issued int64
	next := time.Now()
	for i := 0; next.Before(deadline) && ctx.Err() == nil; i++ {
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		a := arrival{scheduled: next, item: items[i%len(items)]}
		next = next.Add(gap())
		issued++
		select {
		case pending <- a:
		default:
			col.record(0, Reply{Err: errOverload})
		}
	}
	stopping.Store(true)
	close(pending)
	wg.Wait()
	return issued - skipped.Load()
}
