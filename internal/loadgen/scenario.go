package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"mpsched/internal/cliutil"
	"mpsched/internal/patsel"
)

// Scenario is a resolved load scenario: an ordered list of workload specs
// the generators cycle through. Every member is individually a valid
// cliutil.Generate spec, so a remote daemon regenerates exactly the graphs
// a local run compiles.
type Scenario struct {
	// Spec is the scenario spec string the scenario was parsed from.
	Spec string
	// Members are the workload specs, in replay order.
	Members []string
}

// mix tier templates: each tier maps a drawn seed to one member spec.
// Deterministic in the draw — the member lists below must never depend on
// map iteration or wall-clock state.
var mixTiers = map[string]func(rng *rand.Rand) string{
	"small": func(rng *rand.Rand) string {
		return fmt.Sprintf("random:seed=%d,n=%d,colors=2", rng.Intn(1<<16), 16+rng.Intn(17))
	},
	"medium": func(rng *rand.Rand) string {
		return fmt.Sprintf("random:seed=%d,n=%d,colors=3", rng.Intn(1<<16), 48+rng.Intn(49))
	},
	"large": func(rng *rand.Rand) string {
		return fmt.Sprintf("random:seed=%d,n=%d,colors=3,fanin=3", rng.Intn(1<<16), 128+rng.Intn(65))
	},
	"chain": func(rng *rand.Rand) string {
		return fmt.Sprintf("chain:depth=%d,width=2,colors=2", 24+rng.Intn(41))
	},
	"wide": func(rng *rand.Rand) string {
		return fmt.Sprintf("wide:stages=%d,lanes=8,colors=2", 3+rng.Intn(3))
	},
}

// mixTierOrder fixes the tier iteration order (maps are unordered; the
// blend must not be).
var mixTierOrder = []string{"small", "medium", "large", "chain", "wide"}

// DefaultMixTiers is the tier blend "mix:" uses when the spec names none.
const DefaultMixTiers = "small+medium+chain+wide"

// ParseScenario parses a scenario spec. Any single workload spec
// (see cliutil.Generate) is a one-member scenario; the mix family
//
//	mix:seed=S[,count=N][,tiers=small+medium+large+chain+wide]
//
// expands to a deterministic blend of N members drawn from the named
// tiers — the "mixed fleet" the batch benchmarks model, addressable by one
// string. Parsing never builds graphs; use Resolve for that.
func ParseScenario(spec string) (*Scenario, error) {
	name, arg, _ := strings.Cut(spec, ":")
	if name != "mix" {
		// Validate the family eagerly (cheap — no graph is built; Resolve
		// surfaces parameter errors) so a typo fails at parse time.
		known := false
		for _, w := range cliutil.Catalog() {
			if w.Name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown workload family %q in scenario %q", name, spec)
		}
		return &Scenario{Spec: spec, Members: []string{spec}}, nil
	}

	seed, count := int64(1), 8
	tiers := DefaultMixTiers
	seen := map[string]bool{}
	for _, part := range strings.Split(arg, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return nil, fmt.Errorf("mix: bad parameter %q (want key=value) in %q", part, spec)
		}
		// A repeated key is a typo that would measure a different fleet
		// than intended — fail loudly, like cliutil's key=value parser.
		if seen[k] {
			return nil, fmt.Errorf("mix: parameter %q given twice in %q", k, spec)
		}
		seen[k] = true
		switch k {
		case "seed":
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mix: seed %q is not an integer in %q", v, spec)
			}
			seed = x
		case "count":
			x, err := strconv.Atoi(v)
			if err != nil || x < 1 || x > 4096 {
				return nil, fmt.Errorf("mix: count %q out of range 1..4096 in %q", v, spec)
			}
			count = x
		case "tiers":
			tiers = v
		default:
			return nil, fmt.Errorf("mix: unknown parameter %q (want seed, count, tiers) in %q", k, spec)
		}
	}

	var draw []func(*rand.Rand) string
	for _, tier := range strings.Split(tiers, "+") {
		gen, ok := mixTiers[tier]
		if !ok {
			return nil, fmt.Errorf("mix: unknown tier %q (want one of %s) in %q",
				tier, strings.Join(mixTierOrder, ", "), spec)
		}
		draw = append(draw, gen)
	}

	rng := rand.New(rand.NewSource(seed))
	members := make([]string, count)
	for i := range members {
		members[i] = draw[rng.Intn(len(draw))](rng)
	}
	return &Scenario{Spec: spec, Members: members}, nil
}

// Resolve generates every member graph, returning the items the
// generators replay. sel applies to every item (Pdef defaults to 4 when
// unset, matching the daemon).
func (s *Scenario) Resolve(sel patsel.Config) ([]Item, error) {
	if sel.Pdef == 0 {
		sel.Pdef = 4
	}
	items := make([]Item, len(s.Members))
	for i, m := range s.Members {
		g, err := cliutil.Generate(m)
		if err != nil {
			return nil, fmt.Errorf("scenario %q member %q: %w", s.Spec, m, err)
		}
		items[i] = Item{Spec: m, Graph: g, Select: sel}
	}
	return items, nil
}
