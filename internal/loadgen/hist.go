package loadgen

import "mpsched/internal/obs"

// Histogram is the shared HDR-style log-linear latency histogram. It
// originated here (PR 5) and moved to internal/obs when the server's
// /metrics switched to the same implementation; the alias keeps every
// loadgen caller — and the facade's Result surface — source-compatible.
type Histogram = obs.Histogram
