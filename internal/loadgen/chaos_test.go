package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"mpsched/internal/faults"
	"mpsched/internal/patsel"
	"mpsched/internal/server"
	"mpsched/internal/server/client"
)

// TestChaosStormResilientClient is the chaos gate's contract in
// miniature: a daemon injecting latency, 500s and dropped connections
// on a seeded schedule, stormed through a client running the default
// resilience stack. Every fault must be absorbed — zero client-visible
// errors — while goodput survives.
func TestChaosStormResilientClient(t *testing.T) {
	cfg, err := faults.ParseSpec("latency=5%,latency-dur=2ms,err=5%,drop=2%,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(cfg)
	srv := server.New(server.Options{Faults: inj})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	sc, err := ParseScenario("random:seed=1,n=32,colors=2")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL).WithResilience(client.DefaultResilience())
	res, err := Run(context.Background(), NewRemoteTarget(c), items, Config{
		Scenario: sc.Spec,
		Mode:     Closed,
		Clients:  4,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("chaos storm leaked %d errors through the resilience stack: %v",
			res.Errors, res.ErrorSamples)
	}
	if res.Success < 50 {
		t.Fatalf("goodput collapsed under chaos: %d successes", res.Success)
	}
	stats := inj.Stats()
	if stats.Err == 0 && stats.Drop == 0 && stats.Latency == 0 {
		t.Fatal("injector never fired — the storm proved nothing")
	}
	cs := c.ResilienceStats()
	if stats.Err+stats.Drop > 0 && cs.Retries == 0 {
		t.Errorf("faults fired (%+v) but the client never retried (%+v)", stats, cs)
	}
	t.Logf("chaos storm: %d ok, faults %+v, client %+v", res.Success, stats, cs)
}

// TestChaosStormBareClientSeesFaults is the control: the same chaos
// without resilience leaks errors, proving the resilient run above is
// the stack absorbing faults rather than the injector idling.
func TestChaosStormBareClientSeesFaults(t *testing.T) {
	cfg, err := faults.ParseSpec("err=30%,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Faults: faults.New(cfg)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	sc, err := ParseScenario("random:seed=1,n=32,colors=2")
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Resolve(patsel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewRemoteTarget(client.New(ts.URL)), items, Config{
		Scenario: sc.Spec,
		Mode:     Closed,
		Clients:  4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("bare client saw no errors under 30% injected 500s — injector is not wired")
	}
}
