package pattern

import (
	"sort"
	"strings"

	"mpsched/internal/dfg"
)

// Set is an ordered collection of distinct patterns. Insertion order is
// preserved (the scheduler reports which pattern index served each cycle),
// and duplicates — by canonical key — are ignored.
type Set struct {
	patterns []Pattern
	index    map[string]int
}

// NewSet builds a set from the given patterns, dropping duplicates.
func NewSet(ps ...Pattern) *Set {
	s := &Set{index: map[string]int{}}
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// ParseSet parses a comma-free, semicolon- or space-separated list of
// compact patterns, e.g. "aabcc aaacc" or "{a,b,c};{a,a}".
func ParseSet(s string) (*Set, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ' ' })
	set := NewSet()
	for _, f := range fields {
		if f == "" {
			continue
		}
		p, err := Parse(f)
		if err != nil {
			return nil, err
		}
		set.Add(p)
	}
	return set, nil
}

// Add inserts p if an equal pattern is not already present. It reports
// whether the set grew.
func (s *Set) Add(p Pattern) bool {
	if s.index == nil {
		s.index = map[string]int{}
	}
	key := p.Key()
	if _, dup := s.index[key]; dup {
		return false
	}
	s.index[key] = len(s.patterns)
	s.patterns = append(s.patterns, p)
	return true
}

// Len returns the number of patterns.
func (s *Set) Len() int { return len(s.patterns) }

// At returns the i-th pattern in insertion order.
func (s *Set) At(i int) Pattern { return s.patterns[i] }

// Patterns returns the patterns in insertion order. Callers must not mutate
// the returned slice.
func (s *Set) Patterns() []Pattern { return s.patterns }

// Contains reports whether an equal pattern is in the set.
func (s *Set) Contains(p Pattern) bool {
	_, ok := s.index[p.Key()]
	return ok
}

// ColorSet returns all colors appearing in any pattern of the set, sorted —
// the paper's selected color set Ls.
func (s *Set) ColorSet() []dfg.Color {
	seen := map[dfg.Color]bool{}
	for _, p := range s.patterns {
		for _, c := range p.Colors() {
			seen[c] = true
		}
	}
	out := make([]dfg.Color, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoversColors reports whether every color in want appears in some pattern.
func (s *Set) CoversColors(want []dfg.Color) bool {
	have := map[dfg.Color]bool{}
	for _, c := range s.ColorSet() {
		have[c] = true
	}
	for _, c := range want {
		if !have[c] {
			return false
		}
	}
	return true
}

// String renders the set as "{a,a,b,c,c} {a,a,a,c,c}".
func (s *Set) String() string {
	parts := make([]string, len(s.patterns))
	for i, p := range s.patterns {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}
