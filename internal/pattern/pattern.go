// Package pattern implements the paper's patterns: bags (multisets) of at
// most C operation colors that a reconfigurable tile can execute in one
// clock cycle. It provides canonical forms, the subpattern partial order,
// parsing/formatting of the paper's "aabcc" notation, and pattern sets.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"mpsched/internal/dfg"
)

// Pattern is a multiset of colors. The zero value is the empty pattern.
// Patterns are immutable once built; all "mutators" return new values.
//
// A pattern on a machine with C resources may hold fewer than C colors; the
// remaining slots are dummies (idle ALUs) and are not stored.
type Pattern struct {
	colors []dfg.Color // sorted ascending — the canonical representation
}

// New builds a pattern from the given colors (any order, duplicates allowed).
func New(colors ...dfg.Color) Pattern {
	cs := make([]dfg.Color, len(colors))
	copy(cs, colors)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return Pattern{colors: cs}
}

// FromSorted builds a pattern from colors already in ascending order,
// skipping New's defensive sort — the constructor for producers that emit
// canonical order by construction (the antichain interner materialises
// classes from per-color count vectors walked in color order). The slice
// is copied; if the input turns out unsorted it falls back to New.
func FromSorted(colors []dfg.Color) Pattern {
	for i := 1; i < len(colors); i++ {
		if colors[i-1] > colors[i] {
			return New(colors...)
		}
	}
	cs := make([]dfg.Color, len(colors))
	copy(cs, colors)
	return Pattern{colors: cs}
}

// Parse reads the paper's compact notation: either a string of single-rune
// colors ("aabcc") or a comma-separated list for multi-rune colors
// ("add,add,mul"). Braces and spaces are ignored, so "{a,b,c,b,c}" works.
func Parse(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	if s == "" {
		return Pattern{}, nil
	}
	var colors []dfg.Color
	if strings.Contains(s, ",") {
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return Pattern{}, fmt.Errorf("pattern: empty color in %q", s)
			}
			colors = append(colors, dfg.Color(part))
		}
	} else {
		for _, r := range s {
			if r == ' ' {
				continue
			}
			colors = append(colors, dfg.Color(r))
		}
	}
	return New(colors...), nil
}

// MustParse is Parse for literals known to be valid.
func MustParse(s string) Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns |p̄|, the number of (non-dummy) colors in the pattern.
func (p Pattern) Size() int { return len(p.colors) }

// Colors returns the sorted colors. The caller must not mutate the slice.
func (p Pattern) Colors() []dfg.Color { return p.colors }

// Count returns the multiplicity of color c in the pattern.
func (p Pattern) Count(c dfg.Color) int {
	n := 0
	for _, pc := range p.colors {
		if pc == c {
			n++
		}
	}
	return n
}

// Counts returns the multiplicity of every color.
func (p Pattern) Counts() map[dfg.Color]int {
	out := map[dfg.Color]int{}
	for _, c := range p.colors {
		out[c]++
	}
	return out
}

// DistinctColors returns the set of distinct colors, sorted.
func (p Pattern) DistinctColors() []dfg.Color {
	var out []dfg.Color
	for i, c := range p.colors {
		if i == 0 || c != p.colors[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// Key returns the canonical comma-joined form, usable as a map key.
func (p Pattern) Key() string {
	parts := make([]string, len(p.colors))
	for i, c := range p.colors {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}

// String renders the paper's brace notation, e.g. "{a,a,b,c,c}".
func (p Pattern) String() string { return "{" + p.Key() + "}" }

// Compact renders single-rune color patterns as "aabcc"; multi-rune colors
// fall back to the comma form.
func (p Pattern) Compact() string {
	var sb strings.Builder
	for _, c := range p.colors {
		if len(c) != 1 {
			return p.Key()
		}
		sb.WriteString(string(c))
	}
	return sb.String()
}

// Equal reports whether two patterns are the same multiset.
func (p Pattern) Equal(q Pattern) bool {
	if len(p.colors) != len(q.colors) {
		return false
	}
	for i := range p.colors {
		if p.colors[i] != q.colors[i] {
			return false
		}
	}
	return true
}

// Compare orders patterns exactly as strings.Compare(p.Key(), q.Key())
// would — the ordering pattern selection has always used for deterministic
// iteration — but without materialising the key strings. It walks the
// virtual comma-joined form byte by byte and returns -1, 0 or 1.
func (p Pattern) Compare(q Pattern) int {
	a := keyIter{colors: p.colors}
	b := keyIter{colors: q.colors}
	for {
		ab, aok := a.next()
		bb, bok := b.next()
		switch {
		case !aok && !bok:
			return 0
		case !aok:
			return -1
		case !bok:
			return 1
		case ab < bb:
			return -1
		case ab > bb:
			return 1
		}
	}
}

// keyIter yields the bytes of a pattern's Key() — the colors joined by
// commas — without building the string.
type keyIter struct {
	colors []dfg.Color
	ci, bi int // current color, byte offset within it
}

func (it *keyIter) next() (byte, bool) {
	for it.ci < len(it.colors) {
		c := it.colors[it.ci]
		if it.bi < len(c) {
			b := c[it.bi]
			it.bi++
			return b, true
		}
		it.ci++
		it.bi = 0
		if it.ci < len(it.colors) {
			return ',', true
		}
	}
	return 0, false
}

// SubpatternOf reports multiset inclusion p ⊆ q: every color of p occurs in
// q with at least the same multiplicity. A pattern is a subpattern of
// itself; the paper's "delete the subpatterns of the selected pattern" uses
// exactly this relation.
func (p Pattern) SubpatternOf(q Pattern) bool {
	if len(p.colors) > len(q.colors) {
		return false
	}
	i, j := 0, 0
	for i < len(p.colors) && j < len(q.colors) {
		switch {
		case p.colors[i] == q.colors[j]:
			i++
			j++
		case p.colors[i] > q.colors[j]:
			j++
		default: // p has a color q lacks
			return false
		}
	}
	return i == len(p.colors)
}

// ProperSubpatternOf reports p ⊂ q (inclusion and p ≠ q).
func (p Pattern) ProperSubpatternOf(q Pattern) bool {
	return !p.Equal(q) && p.SubpatternOf(q)
}

// Add returns a new pattern with c appended.
func (p Pattern) Add(c dfg.Color) Pattern {
	out := make([]dfg.Color, 0, len(p.colors)+1)
	out = append(out, p.colors...)
	out = append(out, c)
	return New(out...)
}

// Fits reports whether the multiset of colors occurring in nodes can execute
// under this pattern, i.e. for every color the demand does not exceed the
// pattern's multiplicity.
func (p Pattern) Fits(demand map[dfg.Color]int) bool {
	for c, need := range demand {
		if need > p.Count(c) {
			return false
		}
	}
	return true
}
