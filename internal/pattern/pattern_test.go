package pattern

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mpsched/internal/dfg"
)

func TestNewSortsCanonically(t *testing.T) {
	p := New("c", "a", "b", "a")
	if p.Key() != "a,a,b,c" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.Size() != 4 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestParseCompact(t *testing.T) {
	p, err := Parse("aabcc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "a,a,b,c,c" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.Compact() != "aabcc" {
		t.Errorf("Compact = %q", p.Compact())
	}
}

func TestParseBraced(t *testing.T) {
	p, err := Parse("{a,b,c,b,c}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "a,b,b,c,c" {
		t.Errorf("Key = %q", p.Key())
	}
}

func TestParseMultiRuneColors(t *testing.T) {
	p, err := Parse("add,mul,add")
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "add,add,mul" {
		t.Errorf("Key = %q", p.Key())
	}
	// Compact falls back to comma form for multi-rune colors.
	if p.Compact() != "add,add,mul" {
		t.Errorf("Compact = %q", p.Compact())
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	p, err := Parse("")
	if err != nil || p.Size() != 0 {
		t.Errorf("empty parse: %v %v", p, err)
	}
	if _, err := Parse("a,,b"); err == nil {
		t.Error("empty color accepted")
	}
}

func TestCounts(t *testing.T) {
	p := MustParse("aabcc")
	if p.Count("a") != 2 || p.Count("b") != 1 || p.Count("c") != 2 || p.Count("z") != 0 {
		t.Errorf("counts wrong: %v", p.Counts())
	}
	d := p.DistinctColors()
	if len(d) != 3 || d[0] != "a" || d[1] != "b" || d[2] != "c" {
		t.Errorf("DistinctColors = %v", d)
	}
}

func TestEqual(t *testing.T) {
	if !MustParse("abc").Equal(MustParse("cba")) {
		t.Error("order should not matter")
	}
	if MustParse("aab").Equal(MustParse("ab")) {
		t.Error("multiplicity should matter")
	}
}

func TestSubpattern(t *testing.T) {
	cases := []struct {
		sub, sup string
		want     bool
	}{
		{"a", "aabcc", true},
		{"aa", "aabcc", true},
		{"aaa", "aabcc", false},
		{"bc", "aabcc", true},
		{"cc", "aabcc", true},
		{"d", "aabcc", false},
		{"", "aabcc", true},
		{"aabcc", "aabcc", true},
		{"abc", "ab", false},
	}
	for _, c := range cases {
		got := MustParse(c.sub).SubpatternOf(MustParse(c.sup))
		if got != c.want {
			t.Errorf("SubpatternOf(%q,%q) = %v, want %v", c.sub, c.sup, got, c.want)
		}
	}
	if MustParse("abc").ProperSubpatternOf(MustParse("abc")) {
		t.Error("pattern proper subpattern of itself")
	}
	if !MustParse("ab").ProperSubpatternOf(MustParse("abc")) {
		t.Error("ab should be proper subpattern of abc")
	}
}

// Subpattern is a partial order on canonical patterns: reflexive,
// antisymmetric, transitive. Verified over random small patterns.
func TestSubpatternPartialOrderQuick(t *testing.T) {
	gen := func(seed uint32) Pattern {
		var colors []dfg.Color
		alphabet := []dfg.Color{"a", "b", "c"}
		for i := 0; i < 5; i++ {
			pick := seed % 4
			seed /= 4
			if pick < 3 {
				colors = append(colors, alphabet[pick])
			}
		}
		return New(colors...)
	}
	f := func(s1, s2, s3 uint32) bool {
		p, q, r := gen(s1), gen(s2), gen(s3)
		if !p.SubpatternOf(p) {
			return false // reflexive
		}
		if p.SubpatternOf(q) && q.SubpatternOf(p) && !p.Equal(q) {
			return false // antisymmetric
		}
		if p.SubpatternOf(q) && q.SubpatternOf(r) && !p.SubpatternOf(r) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAdd(t *testing.T) {
	p := MustParse("ac").Add("b")
	if p.Key() != "a,b,c" {
		t.Errorf("Add result %q", p.Key())
	}
}

func TestFits(t *testing.T) {
	p := MustParse("aabcc")
	if !p.Fits(map[dfg.Color]int{"a": 2, "c": 1}) {
		t.Error("feasible demand rejected")
	}
	if p.Fits(map[dfg.Color]int{"a": 3}) {
		t.Error("infeasible demand accepted")
	}
	if p.Fits(map[dfg.Color]int{"z": 1}) {
		t.Error("unknown color accepted")
	}
	if !p.Fits(nil) {
		t.Error("empty demand rejected")
	}
}

func TestSetDedupAndOrder(t *testing.T) {
	s := NewSet(MustParse("ab"), MustParse("ba"), MustParse("cc"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (ab == ba)", s.Len())
	}
	if s.At(0).Key() != "a,b" || s.At(1).Key() != "c,c" {
		t.Errorf("insertion order lost: %s", s)
	}
	if !s.Contains(MustParse("ab")) || s.Contains(MustParse("abc")) {
		t.Error("Contains wrong")
	}
	if s.Add(MustParse("ab")) {
		t.Error("duplicate add reported growth")
	}
	if !s.Add(MustParse("abc")) {
		t.Error("new pattern add not reported")
	}
}

func TestParseSet(t *testing.T) {
	s, err := ParseSet("aabcc aaacc")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s2, err := ParseSet("{a,b};{b,a};{c}")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Errorf("semicolon parse Len = %d, want 2", s2.Len())
	}
}

func TestSetColorCoverage(t *testing.T) {
	s := NewSet(MustParse("aab"), MustParse("cc"))
	cols := s.ColorSet()
	want := []dfg.Color{"a", "b", "c"}
	if len(cols) != len(want) {
		t.Fatalf("ColorSet = %v", cols)
	}
	if !sort.SliceIsSorted(cols, func(i, j int) bool { return cols[i] < cols[j] }) {
		t.Error("ColorSet not sorted")
	}
	if !s.CoversColors(want) {
		t.Error("coverage of own colors failed")
	}
	if s.CoversColors([]dfg.Color{"a", "z"}) {
		t.Error("coverage of foreign color claimed")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(MustParse("ab"))
	if s.String() != "{a,b}" {
		t.Errorf("String = %q", s.String())
	}
}

// Compare must agree with strings.Compare over canonical keys for every
// pattern pair, including multi-rune colors whose bytes sort around ','.
func TestCompareMatchesKeyOrder(t *testing.T) {
	pats := []Pattern{
		{},
		MustParse("a"),
		MustParse("aa"),
		MustParse("aabcc"),
		MustParse("b"),
		MustParse("add,add,mul"),
		MustParse("add,mul"),
		New("a+b"),        // '+' < ',' — the byte-order trap
		New("a", "b"),     // key "a,b"
		New("ab"),         // key "ab"
		New("a.b"),        // '.' > ','
		New("a", "c"),     // key "a,c"
		New("mul", "add"), // canonicalised to add,mul
	}
	for _, p := range pats {
		for _, q := range pats {
			want := strings.Compare(p.Key(), q.Key())
			if got := p.Compare(q); got != want {
				t.Errorf("Compare(%q, %q) = %d, want %d", p.Key(), q.Key(), got, want)
			}
		}
	}
}

func TestFromSorted(t *testing.T) {
	sorted := []dfg.Color{"a", "a", "b", "c"}
	p := FromSorted(sorted)
	if !p.Equal(New(sorted...)) {
		t.Fatalf("FromSorted(%v) = %v", sorted, p)
	}
	// The input slice must not be aliased.
	sorted[0] = "z"
	if p.Colors()[0] != "a" {
		t.Error("FromSorted aliased its input slice")
	}
	// Unsorted input falls back to canonicalisation.
	q := FromSorted([]dfg.Color{"c", "a", "b"})
	if q.Key() != "a,b,c" {
		t.Errorf("unsorted fallback key = %q, want a,b,c", q.Key())
	}
	if FromSorted(nil).Size() != 0 {
		t.Error("empty FromSorted not empty")
	}
}
