// Package cluster implements the Clustering phase of the Montium compiler
// flow [3]: grouping data-flow operations into the units one ALU executes
// in a single cycle. The paper schedules at single-operation granularity,
// so the default clustering is the identity; FuseMulAdd is the classic
// multiply-accumulate fusion the Montium ALU datapath supports, offered as
// the documented extension point.
package cluster

import (
	"fmt"

	"mpsched/internal/dfg"
)

// Clustering maps an original DFG onto a clustered one. The clustered
// graph is structural (clusters carry a color but no semantics); Members
// lets later phases recover the original operations inside each cluster in
// dependency order.
type Clustering struct {
	Original  *dfg.Graph
	Clustered *dfg.Graph
	MemberOf  []int   // original node id → cluster id
	Members   [][]int // cluster id → original node ids, dependency-ordered
}

// Identity puts every node in its own cluster. The clustered graph shares
// names and colors with the original.
func Identity(d *dfg.Graph) (*Clustering, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	c := &Clustering{
		Original:  d,
		Clustered: dfg.NewGraph(d.Name + "_clustered"),
		MemberOf:  make([]int, d.N()),
		Members:   make([][]int, d.N()),
	}
	for i := 0; i < d.N(); i++ {
		id, err := c.Clustered.AddNode(dfg.Node{Name: d.NameOf(i), Color: d.ColorOf(i)})
		if err != nil {
			return nil, err
		}
		c.MemberOf[i] = id
		c.Members[id] = []int{i}
	}
	for _, e := range d.Digraph().Edges() {
		if err := c.Clustered.AddDep(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// FuseMulAdd fuses each multiplication whose *only* consumer is an
// addition, and which is that addition's only multiplication input, into a
// single multiply-accumulate cluster of the given color. Contracting a
// single-successor edge cannot create cycles, so the result is a DAG.
func FuseMulAdd(d *dfg.Graph, macColor dfg.Color) (*Clustering, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if macColor == "" {
		macColor = "m"
	}
	n := d.N()
	// fusedInto[m] = a means mul m joins add a's cluster.
	fusedInto := make([]int, n)
	for i := range fusedInto {
		fusedInto[i] = -1
	}
	taken := make([]bool, n) // add already absorbed a mul
	for m := 0; m < n; m++ {
		if d.Node(m).Op != dfg.OpMul {
			continue
		}
		succs := d.Succs(m)
		if len(succs) != 1 {
			continue
		}
		a := succs[0]
		if d.Node(a).Op != dfg.OpAdd || taken[a] {
			continue
		}
		fusedInto[m] = a
		taken[a] = true
	}

	c := &Clustering{
		Original: d,
		MemberOf: make([]int, n),
	}
	clustered := dfg.NewGraph(d.Name + "_mac")
	// Create clusters: every non-fused node anchors one.
	clusterOf := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for i := 0; i < n; i++ {
		if fusedInto[i] >= 0 {
			continue // joins its consumer's cluster
		}
		color := d.ColorOf(i)
		name := d.NameOf(i)
		if taken[i] { // an add that absorbed a mul becomes a MAC
			color = macColor
			name = name + "_mac"
		}
		id, err := clustered.AddNode(dfg.Node{Name: name, Color: color})
		if err != nil {
			return nil, err
		}
		clusterOf[i] = id
	}
	for m := 0; m < n; m++ {
		if a := fusedInto[m]; a >= 0 {
			clusterOf[m] = clusterOf[a]
		}
	}
	// Members in dependency order: fused mul before its add.
	c.Members = make([][]int, clustered.N())
	for i := 0; i < n; i++ {
		if fusedInto[i] >= 0 {
			continue
		}
		cid := clusterOf[i]
		// Any mul fused into i goes first.
		for m := 0; m < n; m++ {
			if fusedInto[m] == i {
				c.Members[cid] = append(c.Members[cid], m)
			}
		}
		c.Members[cid] = append(c.Members[cid], i)
	}
	for i := 0; i < n; i++ {
		c.MemberOf[i] = clusterOf[i]
	}
	// Cross-cluster edges.
	for _, e := range d.Digraph().Edges() {
		cu, cv := clusterOf[e[0]], clusterOf[e[1]]
		if cu != cv {
			if err := clustered.AddDep(cu, cv); err != nil {
				return nil, err
			}
		}
	}
	if err := clustered.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: fusion broke the graph: %w", err)
	}
	c.Clustered = clustered
	return c, nil
}

// Stats summarises a clustering.
type Stats struct {
	OriginalNodes  int
	ClusteredNodes int
	Fused          int // operations absorbed into multi-op clusters
}

// Stats computes summary counts.
func (c *Clustering) Stats() Stats {
	fused := 0
	for _, m := range c.Members {
		if len(m) > 1 {
			fused += len(m) - 1
		}
	}
	return Stats{
		OriginalNodes:  c.Original.N(),
		ClusteredNodes: c.Clustered.N(),
		Fused:          fused,
	}
}
