package cluster

import (
	"testing"

	"mpsched/internal/dfg"
	"mpsched/internal/workloads"
)

func TestIdentity(t *testing.T) {
	g := workloads.ThreeDFT()
	c, err := Identity(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Clustered.N() != g.N() || c.Clustered.M() != g.M() {
		t.Errorf("identity changed the graph: %s vs %s", c.Clustered, g)
	}
	for i := 0; i < g.N(); i++ {
		if c.MemberOf[i] != i || len(c.Members[i]) != 1 || c.Members[i][0] != i {
			t.Fatalf("identity mapping wrong at %d", i)
		}
	}
	st := c.Stats()
	if st.Fused != 0 || st.OriginalNodes != 24 || st.ClusteredNodes != 24 {
		t.Errorf("stats %+v", st)
	}
}

func TestFuseMulAddOnThreeDFT(t *testing.T) {
	g := workloads.ThreeDFT()
	c, err := FuseMulAdd(g, "m")
	if err != nil {
		t.Fatal(err)
	}
	// Each of the six multiplications feeds exactly one addition, and
	// those additions absorb at most one mul each: c9→a15, c13→a18,
	// c12→a17, c14→a20 fuse for sure; c10 and c11 have two consumers so
	// they stay. That leaves 24 − 4 = 20 clusters.
	st := c.Stats()
	if st.Fused != 4 {
		t.Errorf("fused %d ops, want 4", st.Fused)
	}
	if c.Clustered.N() != 20 {
		t.Errorf("clusters = %d, want 20", c.Clustered.N())
	}
	if err := c.Clustered.Validate(); err != nil {
		t.Fatal(err)
	}
	// MAC clusters carry the mac color.
	macs := c.Clustered.NodesByColor("m")
	if len(macs) != 4 {
		t.Errorf("mac clusters = %d, want 4", len(macs))
	}
	// Members are dependency ordered: mul before add.
	for _, cid := range macs {
		m := c.Members[cid]
		if len(m) != 2 {
			t.Fatalf("mac cluster %d has %d members", cid, len(m))
		}
		if g.Node(m[0]).Op != dfg.OpMul || g.Node(m[1]).Op != dfg.OpAdd {
			t.Errorf("mac cluster %d order wrong: %v", cid, m)
		}
	}
}

func TestFuseMulAddKeepsSharedMuls(t *testing.T) {
	// mul with two consumers must not fuse.
	g, err := dfg.NewBuilder("shared").
		OpNode("m", "c", dfg.OpMul, dfg.In("x"), dfg.K(2)).
		OpNode("s1", "a", dfg.OpAdd, dfg.N("m"), dfg.In("y")).
		OpNode("s2", "a", dfg.OpAdd, dfg.N("m"), dfg.In("z")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := FuseMulAdd(g, "m")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Fused != 0 {
		t.Errorf("shared mul fused: %+v", c.Stats())
	}
}

func TestFuseMulAddAddAbsorbsOneMulOnly(t *testing.T) {
	// add fed by two single-use muls absorbs only one.
	g, err := dfg.NewBuilder("two").
		OpNode("m1", "c", dfg.OpMul, dfg.In("x"), dfg.K(2)).
		OpNode("m2", "c", dfg.OpMul, dfg.In("y"), dfg.K(3)).
		OpNode("s", "a", dfg.OpAdd, dfg.N("m1"), dfg.N("m2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := FuseMulAdd(g, "m")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Fused != 1 {
		t.Errorf("fused = %d, want 1", c.Stats().Fused)
	}
	if c.Clustered.N() != 2 {
		t.Errorf("clusters = %d, want 2", c.Clustered.N())
	}
}

func TestClusteredGraphSchedulable(t *testing.T) {
	g := workloads.ThreeDFT()
	c, err := FuseMulAdd(g, "m")
	if err != nil {
		t.Fatal(err)
	}
	// Cluster colors now include "m"; levels must still compute.
	lv := c.Clustered.Levels()
	if lv.CriticalPathLength() > g.Levels().CriticalPathLength() {
		t.Error("fusion lengthened the critical path")
	}
}
