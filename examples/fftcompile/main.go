// fftcompile walks the complete Montium compiler flow on an FFT kernel:
//
//	expression source ──transform──▶ DFG ──patsel──▶ patterns
//	   ──sched──▶ schedule ──alloc──▶ program ──montium──▶ simulated run
//
// The direct-form 4-point DFT source is generated, compiled (constant
// folding + CSE + negation pushing shrink it substantially), scheduled
// with selected patterns, allocated onto the default Montium tile, and
// executed; the simulated outputs are checked against the textbook DFT.
//
// Run with: go run ./examples/fftcompile
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"mpsched"
	"mpsched/internal/alloc"
	"mpsched/internal/sched"
	"mpsched/internal/transform"
	"mpsched/internal/workloads"
)

func main() {
	const n = 4
	src := transform.DFTSource(n)
	fmt.Printf("generated %d-point DFT source (%d bytes)\n", n, len(src))

	// Phase 1: transformation (lex, parse, fold, CSE, negation pushing).
	bloated, err := mpsched.Compile(src, transform.Options{Name: "dft4", DisableCSE: true, DisableFolding: true})
	if err != nil {
		log.Fatal(err)
	}
	g, err := mpsched.Compile(src, transform.Options{Name: "dft4"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformation: %d ops naive → %d ops optimised\n", bloated.N(), g.N())

	// Phase 3: pattern selection + multi-pattern scheduling (phase 2,
	// clustering, is the identity at this granularity).
	sel, schedule, span, err := mpsched.SelectPatternsBestSpan(g,
		mpsched.SelectConfig{C: 5, Pdef: 4}, []int{0, 1, 2}, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection (span≤%d): %s\n", span, sel.Patterns)
	fmt.Printf("schedule: %d cycles for %d ops\n", schedule.Length(), g.N())

	// Phase 4: allocation onto the default Montium tile.
	prog, err := mpsched.Allocate(schedule, alloc.DefaultArch())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation: spills=%d, cross-ALU operands=%d, peak live regs=%d\n",
		prog.Stats.Spills, prog.Stats.CrossALUMoves, prog.Stats.MaxLiveRegs)

	// Execute on the tile model and verify against the textbook DFT.
	tile, err := mpsched.NewTile(prog)
	if err != nil {
		log.Fatal(err)
	}
	x := []complex128{complex(1, 0.5), complex(-2, 1), complex(0.25, -1), complex(3, 2)}
	out, err := tile.Run(workloads.DFTInputs(x))
	if err != nil {
		log.Fatal(err)
	}
	got := workloads.DFTOutputs(n, out)
	want := workloads.ReferenceDFT(x)
	worst := 0.0
	for k := range want {
		if d := cmplx.Abs(got[k] - want[k]); d > worst {
			worst = d
		}
		fmt.Printf("  X%d = %8.4f%+8.4fi   (reference %8.4f%+8.4fi)\n",
			k, real(got[k]), imag(got[k]), real(want[k]), imag(want[k]))
	}
	st := tile.Stats()
	fmt.Printf("tile: %d cycles, %d ALU ops, peak bus load %d/%d\n",
		st.Cycles, st.ALUOps, st.PeakBusLoad, prog.Arch.Buses)
	fmt.Printf("max deviation from textbook DFT: %.2g\n", worst)
	if worst > 1e-6 {
		log.Fatal("simulation diverged")
	}
	fmt.Println("OK: compiled FFT runs correctly on the simulated tile")
}
