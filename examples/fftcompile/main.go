// fftcompile walks the complete Montium compiler flow on an FFT kernel,
// end to end through one CompileSpec:
//
//	expression source ──parse──▶ DFG ──census+select──▶ patterns
//	   ──schedule──▶ schedule ──allocate──▶ program ──montium──▶ run
//
// The direct-form 4-point DFT source is generated and handed to the
// staged Compiler (which lexes, parses, folds, CSEs, selects patterns
// over a span sweep, schedules and allocates onto the default Montium
// tile); the allocated program is executed on the simulated tile and the
// outputs are checked against the textbook DFT.
//
// Run with: go run ./examples/fftcompile
package main

import (
	"context"
	"fmt"
	"log"
	"math/cmplx"

	"mpsched"
	"mpsched/internal/transform"
	"mpsched/internal/workloads"
)

func main() {
	const n = 4
	src := transform.DFTSource(n)
	fmt.Printf("generated %d-point DFT source (%d bytes)\n", n, len(src))

	c := mpsched.NewCompiler(mpsched.PipelineOptions{})

	// A parse-only compile with the optimisations ablated, to show what
	// the transformation phase buys.
	bloated, err := c.Compile(context.Background(), mpsched.NewSourceCompileSpec(src,
		mpsched.WithSourceOptions(transform.Options{Name: "dft4", DisableCSE: true, DisableFolding: true}),
		mpsched.WithStopAfter(mpsched.StageParse)))
	if err != nil {
		log.Fatal(err)
	}

	// The real thing: source in, allocated program out, sweeping span
	// limits 0..2 and keeping the best schedule.
	rep, err := c.Compile(context.Background(), mpsched.NewSourceCompileSpec(src,
		mpsched.WithSourceOptions(transform.Options{Name: "dft4"}),
		mpsched.WithSelect(mpsched.SelectConfig{C: 5, Pdef: 4}),
		mpsched.WithSpans(0, 1, 2),
		mpsched.WithArch(mpsched.DefaultArch())))
	if err != nil {
		log.Fatal(err)
	}
	g := rep.Graph
	fmt.Printf("transformation: %d ops naive → %d ops optimised\n", bloated.Graph.N(), g.N())
	fmt.Printf("selection (span≤%d): %s\n", rep.Span, rep.Selection.Patterns)
	fmt.Printf("schedule: %d cycles for %d ops\n", rep.Schedule.Length(), g.N())
	fmt.Printf("allocation: spills=%d, cross-ALU operands=%d, peak live regs=%d\n",
		rep.Program.Stats.Spills, rep.Program.Stats.CrossALUMoves, rep.Program.Stats.MaxLiveRegs)
	for _, st := range rep.Stages {
		fmt.Printf("  stage %-8s %v\n", st.Stage, st.Elapsed)
	}

	// Execute on the tile model and verify against the textbook DFT.
	tile, err := mpsched.NewTile(rep.Program)
	if err != nil {
		log.Fatal(err)
	}
	x := []complex128{complex(1, 0.5), complex(-2, 1), complex(0.25, -1), complex(3, 2)}
	out, err := tile.Run(workloads.DFTInputs(x))
	if err != nil {
		log.Fatal(err)
	}
	got := workloads.DFTOutputs(n, out)
	want := workloads.ReferenceDFT(x)
	worst := 0.0
	for k := range want {
		if d := cmplx.Abs(got[k] - want[k]); d > worst {
			worst = d
		}
		fmt.Printf("  X%d = %8.4f%+8.4fi   (reference %8.4f%+8.4fi)\n",
			k, real(got[k]), imag(got[k]), real(want[k]), imag(want[k]))
	}
	st := tile.Stats()
	fmt.Printf("tile: %d cycles, %d ALU ops, peak bus load %d/%d\n",
		st.Cycles, st.ALUOps, st.PeakBusLoad, rep.Program.Arch.Buses)
	fmt.Printf("max deviation from textbook DFT: %.2g\n", worst)
	if worst > 1e-6 {
		log.Fatal("simulation diverged")
	}
	fmt.Println("OK: compiled FFT runs correctly on the simulated tile")
}
