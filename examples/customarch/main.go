// customarch retargets the whole flow at a tile that is *not* the Montium:
// a narrow 3-ALU machine with a tiny 4-entry configuration store, small
// register files and few buses. The paper's algorithms are parameterised
// by C and Pdef, so the only change is the CompileSpec — this example
// shows one staged compile scheduling a FIR filter block onto the custom
// tile, watching spills and bus pressure appear as the architecture
// shrinks, and verifying the numerics still hold.
//
// Run with: go run ./examples/customarch
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mpsched"
	"mpsched/internal/alloc"
	"mpsched/internal/workloads"
)

func main() {
	// An 8-tap FIR over a block of 6 samples: 48 multiplies, 42 adds.
	g, err := mpsched.FIRFilter(8, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.String())

	// The custom tile: 3 ALUs, 4 patterns max, 6 registers per ALU.
	tiny := alloc.Arch{
		ALUs: 3, RegsPerALU: 6, Memories: 4, MemWords: 64, Buses: 4, MaxPatterns: 4,
	}
	fmt.Printf("target: %d ALUs, %d-pattern store, %d regs/ALU, %d buses\n\n",
		tiny.ALUs, tiny.MaxPatterns, tiny.RegsPerALU, tiny.Buses)

	// One spec: select ≤4 patterns for C=3, sweep span limits 0..2, keep
	// the best schedule, and allocate it onto the tiny tile.
	rep, err := mpsched.NewCompiler(mpsched.PipelineOptions{}).
		Compile(context.Background(), mpsched.NewCompileSpec(g,
			mpsched.WithSelect(mpsched.SelectConfig{C: tiny.ALUs, Pdef: tiny.MaxPatterns}),
			mpsched.WithSpans(0, 1, 2),
			mpsched.WithArch(tiny)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patterns (span≤%d): %s\n", rep.Span, rep.Selection.Patterns)
	fmt.Printf("schedule: %d cycles for %d ops on %d ALUs\n",
		rep.Schedule.Length(), g.N(), tiny.ALUs)
	lb, err := mpsched.ScheduleLowerBound(g, rep.Selection.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %d cycles (utilisation %.0f%%)\n\n",
		lb, 100*rep.Schedule.Utilization())

	prog := rep.Program
	fmt.Printf("allocation on the tiny tile: spills=%d crossALU=%d peakLiveRegs=%d/%d\n",
		prog.Stats.Spills, prog.Stats.CrossALUMoves, prog.Stats.MaxLiveRegs, tiny.RegsPerALU)

	tile, err := mpsched.NewTile(prog)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 6+8-1)
	inputs := map[string]float64{}
	for i := range xs {
		xs[i] = rng.NormFloat64()
		inputs[fmt.Sprintf("x%d", i)] = xs[i]
	}
	out, err := tile.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	want, err := workloads.ReferenceFIR(8, 6, xs)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for n := 0; n < 6; n++ {
		got := out[fmt.Sprintf("y%d", n)]
		if d := math.Abs(got - want[n]); d > worst {
			worst = d
		}
	}
	st := tile.Stats()
	fmt.Printf("tile run: %d cycles, peak bus load %d/%d (overflow cycles: %d)\n",
		st.Cycles, st.PeakBusLoad, tiny.Buses, st.BusOverflows)
	fmt.Printf("max |simulated − reference| = %.2g\n", worst)
	if worst > 1e-9 {
		log.Fatal("numerics diverged on the custom architecture")
	}
	fmt.Println("OK: FIR block verified on the 3-ALU tile")
}
