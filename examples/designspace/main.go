// designspace explores the pattern-count / span-limit design space for a
// workload — the practical question behind the paper's Table 7: how many
// configuration-store entries (Pdef) does a kernel need before extra
// patterns stop paying off, and how tight may the antichain span limit be?
//
// It prints a Pdef × span matrix of schedule lengths for the 5-point DFT,
// plus the random-selection baseline, reproducing the paper's observations
// that (1) more patterns help monotonically and (2) selected patterns beat
// random ones.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpsched"
	"mpsched/internal/antichain"
	"mpsched/internal/patsel"
	"mpsched/internal/sched"
)

func main() {
	g, err := mpsched.NPointDFT(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.String())
	fmt.Printf("critical path: %d cycles\n\n", g.Levels().CriticalPathLength())

	spans := []int{0, 1, 2, 3}
	const maxPdef = 6

	// One antichain census per span, reused across the Pdef column.
	censuses := make([]*antichain.Result, len(spans))
	for i, span := range spans {
		res, err := antichain.Enumerate(g, antichain.Config{MaxSize: 5, MaxSpan: span})
		if err != nil {
			log.Fatal(err)
		}
		censuses[i] = res
		fmt.Printf("span≤%d: %6d antichains in %4d pattern classes\n",
			span, res.Total(), len(res.Classes))
	}

	fmt.Printf("\nschedule length (cycles), selected patterns:\n Pdef |")
	for _, span := range spans {
		fmt.Printf(" span≤%d", span)
	}
	fmt.Printf("  random(mean of 10)\n")
	rng := rand.New(rand.NewSource(42))
	for pdef := 1; pdef <= maxPdef; pdef++ {
		fmt.Printf("  %2d  |", pdef)
		for i := range spans {
			sel, err := patsel.SelectFrom(g, censuses[i], patsel.Config{C: 5, Pdef: pdef})
			if err != nil {
				log.Fatal(err)
			}
			s, err := sched.MultiPattern(g, sel.Patterns, sched.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6d", s.Length())
		}
		mean, err := randomMean(g, pdef, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %17.1f\n", mean)
	}
}

func randomMean(g *mpsched.Graph, pdef int, rng *rand.Rand) (float64, error) {
	sum := 0
	for t := 0; t < 10; t++ {
		ps, err := patsel.Random(g, patsel.Config{C: 5, Pdef: pdef}, rng)
		if err != nil {
			return 0, err
		}
		s, err := sched.MultiPattern(g, ps, sched.Options{})
		if err != nil {
			return 0, err
		}
		sum += s.Length()
	}
	return float64(sum) / 10, nil
}
