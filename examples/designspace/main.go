// designspace explores the pattern-count / span-limit design space for a
// workload — the practical question behind the paper's Table 7: how many
// configuration-store entries (Pdef) does a kernel need before extra
// patterns stop paying off, and how tight may the antichain span limit be?
//
// It prints a Pdef × span matrix of schedule lengths for the 5-point DFT,
// plus the random-selection baseline, reproducing the paper's observations
// that (1) more patterns help monotonically and (2) selected patterns beat
// random ones. Every cell is one staged compile — a single-element span
// sweep, so the literal limits 0..3 are expressible — through one shared
// compiler whose cache makes the repeated pdef=1 row free.
//
// Run with: go run ./examples/designspace
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mpsched"
	"mpsched/internal/patsel"
)

func main() {
	g, err := mpsched.NPointDFT(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.String())
	fmt.Printf("critical path: %d cycles\n\n", g.Levels().CriticalPathLength())

	spans := []int{0, 1, 2, 3}
	const maxPdef = 6

	c := mpsched.NewCompiler(mpsched.PipelineOptions{Cache: mpsched.NewCompileCache(0)})
	ctx := context.Background()

	// cell compiles one (pdef, span) design point and returns its report.
	cell := func(pdef, span int) (*mpsched.CompileReport, error) {
		return c.Compile(ctx, mpsched.NewCompileSpec(g,
			mpsched.WithSelect(mpsched.SelectConfig{C: 5, Pdef: pdef}),
			mpsched.WithSpans(span), // a one-limit sweep: span 0 stays literal
			mpsched.WithStopAfter(mpsched.StageSchedule)))
	}

	// The pdef=1 column pass doubles as the census report per span.
	for _, span := range spans {
		rep, err := cell(1, span)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("span≤%d: %6d antichains in %4d pattern classes\n",
			span, rep.Census.Antichains, rep.Census.Classes)
	}

	fmt.Printf("\nschedule length (cycles), selected patterns:\n Pdef |")
	for _, span := range spans {
		fmt.Printf(" span≤%d", span)
	}
	fmt.Printf("  random(mean of 10)\n")
	rng := rand.New(rand.NewSource(42))
	for pdef := 1; pdef <= maxPdef; pdef++ {
		fmt.Printf("  %2d  |", pdef)
		for _, span := range spans {
			rep, err := cell(pdef, span) // pdef=1 cells hit the cache
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6d", rep.Schedule.Length())
		}
		mean, err := randomMean(g, pdef, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %17.1f\n", mean)
	}
}

func randomMean(g *mpsched.Graph, pdef int, rng *rand.Rand) (float64, error) {
	sum := 0
	for t := 0; t < 10; t++ {
		ps, err := patsel.Random(g, patsel.Config{C: 5, Pdef: pdef}, rng)
		if err != nil {
			return 0, err
		}
		s, err := mpsched.Schedule(g, ps, mpsched.SchedOptions{})
		if err != nil {
			return 0, err
		}
		sum += s.Length()
	}
	return float64(sum) / 10, nil
}
