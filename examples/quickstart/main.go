// Quickstart: build a small data-flow graph with the public API, let the
// pattern selection algorithm pick two patterns, and schedule the graph
// onto a pattern-limited tile.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpsched"
	"mpsched/internal/dfg"
)

func main() {
	// A toy filter kernel: two products folded into a running sum, plus a
	// difference output. Colors: a = add, b = sub, c = mul.
	g, err := mpsched.NewBuilder("quickstart").
		OpNode("m1", "c", dfg.OpMul, dfg.In("x0"), dfg.K(0.5)).
		OpNode("m2", "c", dfg.OpMul, dfg.In("x1"), dfg.K(0.25)).
		OpNode("m3", "c", dfg.OpMul, dfg.In("x2"), dfg.K(0.125)).
		OpNode("s1", "a", dfg.OpAdd, dfg.N("m1"), dfg.N("m2")).
		OpNode("s2", "a", dfg.OpAdd, dfg.N("s1"), dfg.N("m3")).
		OpNode("d1", "b", dfg.OpSub, dfg.N("m1"), dfg.N("m3")).
		Output("s2", "y").
		Output("d1", "z").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.String())

	// Ask the paper's algorithm for two patterns on a 3-ALU tile.
	sel, err := mpsched.SelectPatterns(g, mpsched.SelectConfig{
		C: 3, Pdef: 2, MaxSpan: mpsched.SpanUnlimited,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected patterns:", sel.Patterns)

	// Schedule against them and show the per-cycle placement.
	s, err := mpsched.Schedule(g, sel.Patterns, mpsched.SchedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(s.Render())

	lb, err := mpsched.ScheduleLowerBound(g, sel.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound %d cycles; achieved %d\n", lb, s.Length())
}
