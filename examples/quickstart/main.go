// Quickstart: build a small data-flow graph with the public API and run
// it through the staged Compiler — one CompileSpec in, one CompileReport
// out, with per-stage timings observed by a stage hook.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mpsched"
	"mpsched/internal/dfg"
)

func main() {
	// A toy filter kernel: two products folded into a running sum, plus a
	// difference output. Colors: a = add, b = sub, c = mul.
	g, err := mpsched.NewBuilder("quickstart").
		OpNode("m1", "c", dfg.OpMul, dfg.In("x0"), dfg.K(0.5)).
		OpNode("m2", "c", dfg.OpMul, dfg.In("x1"), dfg.K(0.25)).
		OpNode("m3", "c", dfg.OpMul, dfg.In("x2"), dfg.K(0.125)).
		OpNode("s1", "a", dfg.OpAdd, dfg.N("m1"), dfg.N("m2")).
		OpNode("s2", "a", dfg.OpAdd, dfg.N("s1"), dfg.N("m3")).
		OpNode("d1", "b", dfg.OpSub, dfg.N("m1"), dfg.N("m3")).
		Output("s2", "y").
		Output("d1", "z").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.String())

	// One spec runs the whole paper flow: the selection algorithm picks
	// two patterns for a 3-ALU tile, the list scheduler places the graph
	// against them, and the hook watches each stage as it completes.
	c := mpsched.NewCompiler(mpsched.PipelineOptions{})
	rep, err := c.Compile(context.Background(), mpsched.NewCompileSpec(g,
		mpsched.WithSelect(mpsched.SelectConfig{
			C: 3, Pdef: 2, MaxSpan: mpsched.SpanUnlimited,
		}),
		mpsched.WithStageHook(func(si mpsched.StageInfo) {
			fmt.Printf("stage %-8s done in %v\n", si.Stage, si.Elapsed)
		}),
	))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("census: %d antichains in %d pattern classes\n",
		rep.Census.Antichains, rep.Census.Classes)
	fmt.Println("selected patterns:", rep.Selection.Patterns)
	fmt.Print(rep.Schedule.Render())

	lb, err := mpsched.ScheduleLowerBound(g, rep.Selection.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound %d cycles; achieved %d (compile took %v)\n",
		lb, rep.Schedule.Length(), rep.Elapsed)
}
