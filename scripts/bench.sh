#!/usr/bin/env sh
# bench.sh — measure the core benchmarks and write machine-readable
# results (ns/op, allocs/op, jobs/s) to BENCH_enumeration.json, seeding
# the repo's perf trajectory. Usage:
#
#   scripts/bench.sh [-smoke] [output.json]
#
# -smoke runs the minimal subset (3DFT only) so CI can prove the
# generation path still works without paying for real measurement; do not
# commit a smoke-mode JSON as the repo's benchmark record.
#
# The measurements run in-process via testing.Benchmark (no output
# parsing); see cmd/experiments/benchjson.go for the benchmark set.
set -eu
cd "$(dirname "$0")/.."
smoke=""
if [ "${1:-}" = "-smoke" ]; then
  smoke="-bench-smoke"
  shift
fi
out="${1:-BENCH_enumeration.json}"
exec go run ./cmd/experiments -bench-json "$out" $smoke
