#!/usr/bin/env sh
# bench.sh — measure the core benchmarks and write machine-readable
# results (ns/op, allocs/op, jobs/s) to BENCH_enumeration.json, seeding
# the repo's perf trajectory. Usage:
#
#   scripts/bench.sh [output.json]
#
# The measurements run in-process via testing.Benchmark (no output
# parsing); see cmd/experiments/benchjson.go for the benchmark set.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_enumeration.json}"
exec go run ./cmd/experiments -bench-json "$out"
