package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpsched/internal/benchfmt"
)

func write(t *testing.T, name string, rep benchfmt.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func check(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	code := run(args, &out, &out)
	return code, out.String()
}

func microReport(ns float64, allocs int64) benchfmt.Report {
	rep := benchfmt.NewReport()
	rep.Results = []benchfmt.Result{
		{Name: "Enumerate/3dft", Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: 1},
		{Name: "OnlyInCurrent", Iterations: 1, NsPerOp: 5},
	}
	return rep
}

func loadReport(errors int64, p50 float64) benchfmt.Report {
	rep := benchfmt.NewReport()
	rep.Results = []benchfmt.Result{{
		Name: "loadgen/ci", Iterations: 50, NsPerOp: 2e6, JobsPerSec: 100,
		P50Ns: p50, P90Ns: p50 * 1.5, P99Ns: p50 * 2, P999Ns: p50 * 3,
		Requests: 50, Errors: errors, Rejected: 2, CacheHitRatio: 0.9,
	}}
	return rep
}

func TestSchemaOnly(t *testing.T) {
	cur := write(t, "cur.json", microReport(1000, 10))
	if code, out := check(t, "-current", cur); code != 0 {
		t.Fatalf("valid report rejected:\n%s", out)
	}
	if code, _ := check(t); code == 0 {
		t.Fatal("missing -current accepted")
	}
	empty := write(t, "empty.json", benchfmt.NewReport())
	if code, _ := check(t, "-current", empty); code == 0 {
		t.Fatal("empty result set accepted")
	}
	if code, _ := check(t, "-current", filepath.Join(t.TempDir(), "missing.json")); code == 0 {
		t.Fatal("unreadable file accepted")
	}
}

func TestBaselineComparison(t *testing.T) {
	base := write(t, "base.json", microReport(1000, 10))
	within := write(t, "within.json", microReport(2500, 25)) // 2.5x, under 3x
	if code, out := check(t, "-current", within, "-baseline", base); code != 0 {
		t.Fatalf("2.5x flagged under 3x tolerance:\n%s", out)
	}
	over := write(t, "over.json", microReport(4000, 10)) // 4x ns/op
	code, out := check(t, "-current", over, "-baseline", base)
	if code == 0 {
		t.Fatalf("4x regression passed the 3x gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "ns/op") {
		t.Fatalf("failure output unreadable:\n%s", out)
	}
	// Allocs regress too.
	allocUp := write(t, "allocs.json", microReport(1000, 100))
	if code, _ := check(t, "-current", allocUp, "-baseline", base); code == 0 {
		t.Fatal("10x allocs passed the 3x gate")
	}
	// Wider tolerance lets the same file through.
	if code, out := check(t, "-current", over, "-baseline", base, "-tol", "5"); code != 0 {
		t.Fatalf("4x flagged under 5x tolerance:\n%s", out)
	}
	// Disjoint names: nothing to compare must fail loudly, not pass silently.
	disjoint := benchfmt.NewReport()
	disjoint.Results = []benchfmt.Result{{Name: "Unrelated", Iterations: 1, NsPerOp: 1}}
	dj := write(t, "disjoint.json", disjoint)
	if code, _ := check(t, "-current", dj, "-baseline", base); code == 0 {
		t.Fatal("zero-overlap comparison passed")
	}
}

// servingReport builds a load result for baseline-direction tests: the
// Requests field marks it so jobs_per_sec gates as a floor and p99 as a
// ceiling, not ns_per_op as a ceiling.
func servingReport(jps, p99 float64) benchfmt.Report {
	rep := benchfmt.NewReport()
	rep.Results = []benchfmt.Result{{
		Name: "serving/ci", Iterations: 1000, NsPerOp: 1e6, JobsPerSec: jps,
		P50Ns: p99 / 3, P99Ns: p99, Requests: 1000,
	}}
	return rep
}

func TestLoadBaselineDirection(t *testing.T) {
	base := write(t, "base.json", servingReport(50000, 6e6))
	// Throughput up, latency down: better on both axes must pass.
	faster := write(t, "faster.json", servingReport(90000, 3e6))
	if code, out := check(t, "-current", faster, "-baseline", base); code != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", out)
	}
	// Throughput collapse (10x below baseline, floor is 1/3 at tol 3).
	slow := write(t, "slow.json", servingReport(5000, 6e6))
	code, out := check(t, "-current", slow, "-baseline", base)
	if code == 0 {
		t.Fatalf("10x throughput collapse passed the floor gate:\n%s", out)
	}
	if !strings.Contains(out, "jobs/sec") {
		t.Fatalf("failure output does not name jobs/sec:\n%s", out)
	}
	// Tail blow-up past tol×p99 fails even with healthy throughput.
	tail := write(t, "tail.json", servingReport(50000, 60e6))
	if code, _ := check(t, "-current", tail, "-baseline", base); code == 0 {
		t.Fatal("10x p99 blow-up passed the ceiling gate")
	}
	// Inside tolerance both ways is fine.
	within := write(t, "within.json", servingReport(25000, 12e6))
	if code, out := check(t, "-current", within, "-baseline", base); code != 0 {
		t.Fatalf("2x wobble flagged under 3x tolerance:\n%s", out)
	}
}

func TestRequire(t *testing.T) {
	cur := write(t, "cur.json", microReport(1000, 10))
	if code, _ := check(t, "-current", cur, "-require", "Enumerate/3dft"); code != 0 {
		t.Fatal("present -require failed")
	}
	if code, _ := check(t, "-current", cur, "-require", "Enumerate/3dft", "-require", "Ghost"); code == 0 {
		t.Fatal("missing -require passed")
	}
}

func TestLoadgenGate(t *testing.T) {
	good := write(t, "good.json", loadReport(0, 2e6))
	if code, out := check(t, "-current", good, "-loadgen", "loadgen/ci"); code != 0 {
		t.Fatalf("healthy load result rejected:\n%s", out)
	}
	witherrs := write(t, "errs.json", loadReport(3, 2e6))
	if code, _ := check(t, "-current", witherrs, "-loadgen", "loadgen/ci"); code == 0 {
		t.Fatal("load result with hard failures passed")
	}
	empty := write(t, "emptyhist.json", loadReport(0, 0))
	if code, _ := check(t, "-current", empty, "-loadgen", "loadgen/ci"); code == 0 {
		t.Fatal("empty histogram passed")
	}
	if code, _ := check(t, "-current", good, "-loadgen", "loadgen/ghost"); code == 0 {
		t.Fatal("missing load result passed")
	}
}

// TestRealBaseline: the gate accepts the repo's checked-in baseline
// compared against itself (ratio 1.0 everywhere) — the self-consistency
// CI relies on.
func TestRealBaseline(t *testing.T) {
	base := "../../BENCH_enumeration.json"
	if code, out := check(t, "-current", base, "-baseline", base); code != 0 {
		t.Fatalf("baseline does not pass against itself:\n%s", out)
	}
}

// fleetReport builds the two-result scaling-ladder shape the fleet CI
// gate feeds in.
func fleetReport(name string, jps, cacheHit float64) benchfmt.Report {
	rep := benchfmt.NewReport()
	rep.Results = []benchfmt.Result{{
		Name: name, Iterations: 100, NsPerOp: 1e6, JobsPerSec: jps,
		P50Ns: 1e6, P99Ns: 3e6, Requests: 100, CacheHitRatio: cacheHit,
	}}
	return rep
}

func TestMergedCurrentAndScaleGate(t *testing.T) {
	one := write(t, "one.json", fleetReport("loadgen/fleet-1x", 1000, 0.95))
	two := write(t, "two.json", fleetReport("loadgen/fleet-2x", 1900, 0.95))
	// 1.9x over a 1.7x floor passes; over a 2.0x floor fails.
	if code, out := check(t, "-current", one+","+two,
		"-scale", "loadgen/fleet-1x;loadgen/fleet-2x;1.7"); code != 0 {
		t.Fatalf("1.9x scaling failed a 1.7x floor:\n%s", out)
	}
	code, out := check(t, "-current", one+","+two,
		"-scale", "loadgen/fleet-1x;loadgen/fleet-2x;2.0")
	if code == 0 {
		t.Fatalf("1.9x scaling passed a 2.0x floor:\n%s", out)
	}
	if !strings.Contains(out, "FAIL scale") {
		t.Fatalf("scale failure not named:\n%s", out)
	}
	// A result missing from the merged set must fail, not silently skip.
	if code, _ := check(t, "-current", one,
		"-scale", "loadgen/fleet-1x;loadgen/fleet-2x;1.7"); code == 0 {
		t.Fatal("scale gate with a missing result passed")
	}
	// Malformed specs are usage errors.
	if code, _ := check(t, "-current", one, "-scale", "a;b"); code == 0 {
		t.Fatal("two-part -scale accepted")
	}
	if code, _ := check(t, "-current", one, "-scale", "a;b;zero"); code == 0 {
		t.Fatal("non-numeric -scale ratio accepted")
	}
	if code, _ := check(t, "-scale", "a;b;1"); code == 0 {
		t.Fatal("-scale without -current accepted")
	}
}

func TestCacheFloor(t *testing.T) {
	warm := write(t, "warm.json", fleetReport("loadgen/fleet-1x", 1000, 0.95))
	if code, out := check(t, "-current", warm, "-cache-floor", "0.9"); code != 0 {
		t.Fatalf("0.95 hit ratio failed a 0.9 floor:\n%s", out)
	}
	cold := write(t, "cold.json", fleetReport("loadgen/fleet-1x", 1000, 0.5))
	code, out := check(t, "-current", cold, "-cache-floor", "0.9")
	if code == 0 {
		t.Fatalf("0.5 hit ratio passed a 0.9 floor:\n%s", out)
	}
	if !strings.Contains(out, "cache hit ratio") {
		t.Fatalf("cache failure not named:\n%s", out)
	}
	// Micro results (no requests) are exempt from the floor.
	micro := write(t, "micro.json", microReport(1000, 10))
	if code, _ := check(t, "-current", micro, "-cache-floor", "0.9"); code != 0 {
		t.Fatal("micro results were held to the cache floor")
	}
}

// restartReport builds the single-result shape -restart-after emits.
func restartReport(pre, warm float64) benchfmt.Report {
	rep := benchfmt.NewReport()
	rep.Results = []benchfmt.Result{{
		Name: "serving/restart/ci", Iterations: 100, NsPerOp: 1e6, JobsPerSec: 1000,
		P50Ns: 1e6, P99Ns: 3e6, Requests: 100,
		PreRestartHitRatio: pre, WarmRestartHitRatio: warm,
	}}
	return rep
}

func TestRestartHitFloor(t *testing.T) {
	held := write(t, "held.json", restartReport(0.98, 0.97))
	if code, out := check(t, "-current", held, "-restart-hit-floor", "0.9"); code != 0 {
		t.Fatalf("warm ratio at 0.99x pre failed a 0.9 floor:\n%s", out)
	}
	collapsed := write(t, "collapsed.json", restartReport(0.98, 0.4))
	code, out := check(t, "-current", collapsed, "-restart-hit-floor", "0.9")
	if code == 0 {
		t.Fatalf("warm ratio collapse passed the floor:\n%s", out)
	}
	if !strings.Contains(out, "warm hit ratio") {
		t.Fatalf("restart failure not named:\n%s", out)
	}
	// A report with no restart-storm result must fail, not silently pass.
	micro := write(t, "micro.json", microReport(1000, 10))
	if code, _ := check(t, "-current", micro, "-restart-hit-floor", "0.9"); code == 0 {
		t.Fatal("report without a restart result passed the floor gate")
	}
	if code, _ := check(t, "-restart-hit-floor", "0.9"); code == 0 {
		t.Fatal("-restart-hit-floor without -current accepted")
	}
}

func TestRouterMetricsCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte(`# TYPE mpschedrouter_backend_up gauge
mpschedrouter_backend_up{backend="http://127.0.0.1:1"} 1
mpschedrouter_backend_up{backend="http://127.0.0.1:2"} 0
# TYPE mpschedrouter_forwarded_total counter
mpschedrouter_forwarded_total{backend="http://127.0.0.1:1"} 42
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := check(t, "-router-metrics", good); code != 0 {
		t.Fatalf("healthy router surface rejected:\n%s", out)
	}
	idle := filepath.Join(dir, "idle.txt")
	if err := os.WriteFile(idle, []byte(`mpschedrouter_backend_up{backend="http://127.0.0.1:1"} 1
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := check(t, "-router-metrics", idle); code == 0 {
		t.Fatal("router that forwarded nothing passed")
	}
	noUp := filepath.Join(dir, "noup.txt")
	if err := os.WriteFile(noUp, []byte(`mpschedrouter_forwarded_total 10
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := check(t, "-router-metrics", noUp); code == 0 {
		t.Fatal("scrape without backend_up samples passed")
	}
}
