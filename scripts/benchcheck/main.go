// Command benchcheck is the CI perf gate: it validates BENCH_*.json
// artifacts (the internal/benchfmt schema) and compares them against a
// checked-in baseline with a generous tolerance, replacing the inline
// python3 JSON assertion the workflow used to carry — CI has no Python
// dependency left.
//
// Usage:
//
//	go run ./scripts/benchcheck -current /tmp/bench.json \
//	    [-baseline BENCH_enumeration.json] [-tol 3.0] \
//	    [-require Enumerate/3dft] [-loadgen loadgen/ci-smoke] \
//	    [-scale 'loadgen/fleet-1x;loadgen/fleet-2x;1.7'] \
//	    [-cache-floor 0.9] [-router-metrics /tmp/router-metrics.txt] \
//	    [-metrics /tmp/metrics.txt] [-traces /tmp/traces.json]
//
// Checks, in order:
//
//   - -current must parse as a benchfmt report with ≥ 1 result, every
//     result named and non-negative; a comma-separated list of files is
//     merged into one report, so a multi-step job (a fleet scaling
//     ladder) gates as a unit. (-current may be omitted when only the
//     observability checks below are requested.)
//   - Each -scale 'from;to;min' (repeatable; semicolons because result
//     names contain commas) asserts jobs_per_sec of result "to" is at
//     least min × that of result "from" — the fleet scaling gate.
//   - With -cache-floor f, every load result (requests > 0) must report
//     cache_hit_ratio ≥ f — routing stayed affine to the key space.
//   - -router-metrics: a saved router GET /metrics body must parse, every
//     mpschedrouter_backend_up sample must be 0 or 1, and the fleet must
//     have forwarded at least one request.
//   - With -baseline: for every benchmark name present in both files,
//     current ns_per_op and allocs_per_op must be ≤ tol × baseline
//     (results only in one file are ignored — smoke runs measure a
//     subset). At least one name must overlap. Baseline entries with
//     requests > 0 are load results and gate the other way around:
//     jobs_per_sec is a floor (current ≥ baseline ÷ tol — a throughput
//     collapse fails) and p99_ns a ceiling (current ≤ tol × baseline).
//   - Each -require name (repeatable) must exist in -current.
//   - The -loadgen name must exist with requests > 0, jobs_per_sec > 0,
//     p50/p99 > 0 and errors == 0 — the load-smoke contract: any
//     non-2xx/non-429 response or an empty histogram fails the gate.
//   - -metrics: a saved GET /metrics body must parse cleanly as
//     Prometheus text and be internally consistent — for every route,
//     mpschedd_requests_total{route} ≥ the summed
//     mpschedd_request_seconds_count over that route's codecs (requests
//     are counted before their latency is recorded, never after).
//   - -traces: a saved GET /debug/traces body must hold ≥ 1 trace, and
//     every trace must be terminal — an id, an HTTP status in
//     [100, 599], a positive duration and at least one span.
//
// Exit code 0 when every check passes, 1 otherwise, with one line per
// comparison so a CI log shows what moved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mpsched/internal/benchfmt"
	"mpsched/internal/cliutil"
	"mpsched/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// repeatable collects a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string { return fmt.Sprint(*r) }
func (r *repeatable) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		current      = fs.String("current", "", "bench JSON to validate, comma-separated files merged (required unless only -metrics/-traces/-router-metrics)")
		baseline     = fs.String("baseline", "", "checked-in baseline to compare against")
		tol          = fs.Float64("tol", 3.0, "regression tolerance: current must be <= tol x baseline")
		loadgen      = fs.String("loadgen", "", "name of a load-test result that must be healthy")
		metricsIn    = fs.String("metrics", "", "saved GET /metrics body to check for internal consistency")
		tracesIn     = fs.String("traces", "", "saved GET /debug/traces body whose traces must all be terminal")
		cacheFloor   = fs.Float64("cache-floor", 0, "minimum cache_hit_ratio for every load result in -current (0 = off)")
		restartFloor = fs.Float64("restart-hit-floor", 0, "minimum warm_restart_hit_ratio as a fraction of pre_restart_hit_ratio for every restart-storm result in -current (0 = off)")
		routerIn     = fs.String("router-metrics", "", "saved router GET /metrics body to check (mpschedrouter_* surface)")
		require      repeatable
		scale        repeatable
	)
	fs.Var(&require, "require", "result name that must exist in -current (repeatable)")
	fs.Var(&scale, "scale", "throughput scaling gate 'from;to;min': jobs_per_sec(to) must be >= min x jobs_per_sec(from) (repeatable)")
	if code, done := cliutil.ParseFlags(fs, argv); done {
		return code
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "benchcheck: FAIL: "+format+"\n", args...)
		return 1
	}
	if *current == "" && *metricsIn == "" && *tracesIn == "" && *routerIn == "" {
		return fail("-current is required")
	}
	if *tol <= 0 {
		return fail("-tol must be positive, got %g", *tol)
	}

	bad := 0
	var cur *benchfmt.Report
	if *current != "" {
		for _, path := range strings.Split(*current, ",") {
			rep, err := benchfmt.ReadFile(strings.TrimSpace(path))
			if err != nil {
				return fail("%v", err)
			}
			if cur == nil {
				cur = rep
			} else {
				cur.Results = append(cur.Results, rep.Results...)
			}
		}
		if len(cur.Results) == 0 {
			return fail("%s has no results", *current)
		}
		for _, r := range cur.Results {
			if r.Name == "" {
				return fail("%s contains an unnamed result", *current)
			}
			if r.NsPerOp < 0 || r.AllocsPerOp < 0 || r.JobsPerSec < 0 {
				return fail("result %q has negative measurements", r.Name)
			}
		}
		fmt.Fprintf(stdout, "benchcheck: %s: %d results, schema ok\n", *current, len(cur.Results))
	} else if *baseline != "" || *loadgen != "" || len(require) > 0 || len(scale) > 0 || *cacheFloor > 0 || *restartFloor > 0 {
		return fail("-baseline/-require/-loadgen/-scale/-cache-floor/-restart-hit-floor need -current")
	}
	if *baseline != "" {
		base, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			return fail("%v", err)
		}
		overlap := 0
		for _, b := range base.Results {
			c := cur.Find(b.Name)
			if c == nil {
				continue // smoke runs measure a subset of the baseline
			}
			overlap++
			if b.Requests > 0 {
				// A load result: throughput must not collapse, tail latency
				// must not blow up. Mean ns/op is implied by those two and
				// alloc counts are not measured by the load generator.
				bad += compareFloor(stdout, b.Name, "jobs/sec", c.JobsPerSec, b.JobsPerSec, *tol)
				bad += compare(stdout, b.Name, "p99_ns", c.P99Ns, b.P99Ns, *tol)
				continue
			}
			bad += compare(stdout, b.Name, "ns/op", c.NsPerOp, b.NsPerOp, *tol)
			bad += compare(stdout, b.Name, "allocs/op", float64(c.AllocsPerOp), float64(b.AllocsPerOp), *tol)
		}
		if overlap == 0 {
			return fail("no benchmark name overlaps between %s and %s", *current, *baseline)
		}
	}

	for _, name := range require {
		if cur.Find(name) == nil {
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s missing from %s\n", name, *current)
		}
	}

	if *loadgen != "" {
		r := cur.Find(*loadgen)
		switch {
		case r == nil:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s load result missing\n", *loadgen)
		case r.Requests <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s issued no requests\n", *loadgen)
		case r.Errors > 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s %d non-2xx/non-429 responses\n", *loadgen, r.Errors)
		case r.JobsPerSec <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s zero throughput\n", *loadgen)
		case r.P50Ns <= 0 || r.P99Ns <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s empty latency histogram (p50=%g p99=%g)\n", *loadgen, r.P50Ns, r.P99Ns)
		default:
			fmt.Fprintf(stdout, "benchcheck: ok   %-40s %.0f compiles/s, p50 %.3fms p99 %.3fms, %d rejected\n",
				*loadgen, r.JobsPerSec, r.P50Ns/1e6, r.P99Ns/1e6, r.Rejected)
		}
	}

	for _, spec := range scale {
		parts := strings.Split(spec, ";")
		if len(parts) != 3 {
			return fail("-scale %q: want 'from;to;min'", spec)
		}
		min, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || min <= 0 {
			return fail("-scale %q: bad minimum ratio %q", spec, parts[2])
		}
		from, to := cur.Find(strings.TrimSpace(parts[0])), cur.Find(strings.TrimSpace(parts[1]))
		switch {
		case from == nil || to == nil:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL scale %q: result missing from -current\n", spec)
		case from.JobsPerSec <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL scale %q: base result has no throughput\n", spec)
		default:
			ratio := to.JobsPerSec / from.JobsPerSec
			status, verdict := "ok  ", 0
			if ratio < min {
				status, verdict = "FAIL", 1
			}
			bad += verdict
			fmt.Fprintf(stdout, "benchcheck: %s scale %-50s %.0f → %.0f jobs/s (%.2fx, floor %.2fx)\n",
				status, parts[0]+" → "+parts[1], from.JobsPerSec, to.JobsPerSec, ratio, min)
		}
	}

	if *cacheFloor > 0 {
		for _, r := range cur.Results {
			if r.Requests <= 0 {
				continue
			}
			if r.CacheHitRatio < *cacheFloor {
				bad++
				fmt.Fprintf(stdout, "benchcheck: FAIL %-40s cache hit ratio %.2f below floor %.2f\n",
					r.Name, r.CacheHitRatio, *cacheFloor)
			} else {
				fmt.Fprintf(stdout, "benchcheck: ok   %-40s cache hit ratio %.2f (floor %.2f)\n",
					r.Name, r.CacheHitRatio, *cacheFloor)
			}
		}
	}

	if *restartFloor > 0 {
		// The warm-restart gate: after the daemon restarted over its
		// persistent store, the cache hit ratio must hold at restartFloor ×
		// its pre-restart level — the store actually fed the new process.
		gated := 0
		for _, r := range cur.Results {
			if r.PreRestartHitRatio <= 0 {
				continue
			}
			gated++
			floor := *restartFloor * r.PreRestartHitRatio
			if r.WarmRestartHitRatio < floor {
				bad++
				fmt.Fprintf(stdout, "benchcheck: FAIL %-40s warm hit ratio %.3f below %.3f (%.2f x pre-restart %.3f)\n",
					r.Name, r.WarmRestartHitRatio, floor, *restartFloor, r.PreRestartHitRatio)
			} else {
				fmt.Fprintf(stdout, "benchcheck: ok   %-40s warm hit ratio %.3f (floor %.3f = %.2f x pre-restart %.3f)\n",
					r.Name, r.WarmRestartHitRatio, floor, *restartFloor, r.PreRestartHitRatio)
			}
		}
		if gated == 0 {
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL no restart-storm result (pre_restart_hit_ratio > 0) in %s\n", *current)
		}
	}

	if *routerIn != "" {
		n, err := checkRouterMetrics(stdout, *routerIn)
		if err != nil {
			return fail("%v", err)
		}
		bad += n
	}

	if *metricsIn != "" {
		n, err := checkMetrics(stdout, *metricsIn)
		if err != nil {
			return fail("%v", err)
		}
		bad += n
	}
	if *tracesIn != "" {
		n, err := checkTraces(stdout, *tracesIn)
		if err != nil {
			return fail("%v", err)
		}
		bad += n
	}

	if bad > 0 {
		return fail("%d check(s) failed", bad)
	}
	fmt.Fprintln(stdout, "benchcheck: all checks passed")
	return 0
}

// checkRouterMetrics parses a saved router /metrics body and asserts the
// fleet surface is sane: the backend_up gauge exists with one strictly
// boolean sample per backend, and the router forwarded at least one
// request during the run that produced the scrape.
func checkRouterMetrics(w io.Writer, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	m, err := obs.ParseMetrics(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	bad := 0
	upSamples := 0
	for _, s := range m {
		if s.Name != "mpschedrouter_backend_up" {
			continue
		}
		upSamples++
		if s.Value != 0 && s.Value != 1 {
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL backend_up{backend=%q} = %g, want 0 or 1\n", s.Labels["backend"], s.Value)
		}
	}
	if upSamples == 0 {
		bad++
		fmt.Fprintf(w, "benchcheck: FAIL %s: no mpschedrouter_backend_up samples\n", path)
	}
	if fwd := m.Sum("mpschedrouter_forwarded_total"); fwd <= 0 {
		bad++
		fmt.Fprintf(w, "benchcheck: FAIL %s: router forwarded nothing (forwarded_total = %g)\n", path, fwd)
	}
	fmt.Fprintf(w, "benchcheck: %s: %d backends on the router surface\n", path, upSamples)
	return bad, nil
}

// checkMetrics parses a saved /metrics body and asserts the scrape-time
// invariant the server maintains: requests are counted before their
// latency is recorded, so for every route the request counter is at
// least the summed latency-histogram counts across that route's codecs.
// Returns the number of failed checks; the error covers an unreadable
// or malformed file (always fatal — a scrape the parser rejects means
// the exposition itself broke under load).
func checkMetrics(w io.Writer, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	m, err := obs.ParseMetrics(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return 0, fmt.Errorf("%s: no samples", path)
	}
	totals := map[string]float64{}   // route → requests_total
	observed := map[string]float64{} // route → Σ request_seconds_count
	for _, s := range m {
		switch s.Name {
		case "mpschedd_requests_total":
			totals[s.Labels["route"]] += s.Value
		case "mpschedd_request_seconds_count":
			observed[s.Labels["route"]] += s.Value
		}
	}
	bad := 0
	for route, obsCount := range observed {
		if total, ok := totals[route]; !ok || obsCount > total {
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL %-40s request_seconds_count %g > requests_total %g\n", route, obsCount, totals[route])
		}
	}
	fmt.Fprintf(w, "benchcheck: %s: %d samples, %d routes consistent\n", path, len(m), len(observed)-bad)
	return bad, nil
}

// traceDump matches the GET /debug/traces body.
type traceDump struct {
	Traces []obs.TraceData `json:"traces"`
}

// checkTraces parses a saved /debug/traces body and asserts every
// recorded trace is terminal: it has an id, an HTTP status, a positive
// duration and at least one span (every traced route records at least
// its decode span, even on a request that fails immediately).
func checkTraces(w io.Writer, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var dump traceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if len(dump.Traces) == 0 {
		return 0, fmt.Errorf("%s: no traces sampled under load", path)
	}
	bad := 0
	for _, t := range dump.Traces {
		switch {
		case t.ID == "":
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL trace without an id (route %s)\n", t.Route)
		case t.Status < 100 || t.Status > 599:
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL trace %s not terminal: status %d\n", t.ID, t.Status)
		case t.DurationMS <= 0:
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL trace %s has non-positive duration %g ms\n", t.ID, t.DurationMS)
		case len(t.Spans) == 0:
			bad++
			fmt.Fprintf(w, "benchcheck: FAIL trace %s recorded no spans\n", t.ID)
		}
	}
	fmt.Fprintf(w, "benchcheck: %s: %d traces, %d terminal\n", path, len(dump.Traces), len(dump.Traces)-bad)
	return bad, nil
}

// compare prints one metric comparison and returns 1 when it regressed
// past tolerance. A zero baseline is skipped — nothing meaningful to
// gate on, and smoke iterations can legitimately round to zero.
func compare(w io.Writer, name, metric string, cur, base, tol float64) int {
	if base <= 0 {
		return 0
	}
	ratio := cur / base
	status := "ok  "
	verdict := 0
	if ratio > tol {
		status = "FAIL"
		verdict = 1
	}
	fmt.Fprintf(w, "benchcheck: %s %-40s %-10s %12.0f vs %12.0f (%.2fx, tol %.1fx)\n",
		status, name, metric, cur, base, ratio, tol)
	return verdict
}

// compareFloor is compare for bigger-is-better metrics (throughput):
// fail when current drops below baseline ÷ tol. A zero baseline is
// skipped for the same reason as in compare.
func compareFloor(w io.Writer, name, metric string, cur, base, tol float64) int {
	if base <= 0 {
		return 0
	}
	ratio := cur / base
	status := "ok  "
	verdict := 0
	if ratio < 1/tol {
		status = "FAIL"
		verdict = 1
	}
	fmt.Fprintf(w, "benchcheck: %s %-40s %-10s %12.0f vs %12.0f (%.2fx, floor %.2fx)\n",
		status, name, metric, cur, base, ratio, 1/tol)
	return verdict
}
