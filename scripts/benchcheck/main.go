// Command benchcheck is the CI perf gate: it validates BENCH_*.json
// artifacts (the internal/benchfmt schema) and compares them against a
// checked-in baseline with a generous tolerance, replacing the inline
// python3 JSON assertion the workflow used to carry — CI has no Python
// dependency left.
//
// Usage:
//
//	go run ./scripts/benchcheck -current /tmp/bench.json \
//	    [-baseline BENCH_enumeration.json] [-tol 3.0] \
//	    [-require Enumerate/3dft] [-loadgen loadgen/ci-smoke]
//
// Checks, in order:
//
//   - -current must parse as a benchfmt report with ≥ 1 result, every
//     result named and non-negative.
//   - With -baseline: for every benchmark name present in both files,
//     current ns_per_op and allocs_per_op must be ≤ tol × baseline
//     (results only in one file are ignored — smoke runs measure a
//     subset). At least one name must overlap. Baseline entries with
//     requests > 0 are load results and gate the other way around:
//     jobs_per_sec is a floor (current ≥ baseline ÷ tol — a throughput
//     collapse fails) and p99_ns a ceiling (current ≤ tol × baseline).
//   - Each -require name (repeatable) must exist in -current.
//   - The -loadgen name must exist with requests > 0, jobs_per_sec > 0,
//     p50/p99 > 0 and errors == 0 — the load-smoke contract: any
//     non-2xx/non-429 response or an empty histogram fails the gate.
//
// Exit code 0 when every check passes, 1 otherwise, with one line per
// comparison so a CI log shows what moved.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpsched/internal/benchfmt"
	"mpsched/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// repeatable collects a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string { return fmt.Sprint(*r) }
func (r *repeatable) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		current  = fs.String("current", "", "bench JSON to validate (required)")
		baseline = fs.String("baseline", "", "checked-in baseline to compare against")
		tol      = fs.Float64("tol", 3.0, "regression tolerance: current must be <= tol x baseline")
		loadgen  = fs.String("loadgen", "", "name of a load-test result that must be healthy")
		require  repeatable
	)
	fs.Var(&require, "require", "result name that must exist in -current (repeatable)")
	if code, done := cliutil.ParseFlags(fs, argv); done {
		return code
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "benchcheck: FAIL: "+format+"\n", args...)
		return 1
	}
	if *current == "" {
		return fail("-current is required")
	}
	if *tol <= 0 {
		return fail("-tol must be positive, got %g", *tol)
	}

	cur, err := benchfmt.ReadFile(*current)
	if err != nil {
		return fail("%v", err)
	}
	if len(cur.Results) == 0 {
		return fail("%s has no results", *current)
	}
	for _, r := range cur.Results {
		if r.Name == "" {
			return fail("%s contains an unnamed result", *current)
		}
		if r.NsPerOp < 0 || r.AllocsPerOp < 0 || r.JobsPerSec < 0 {
			return fail("result %q has negative measurements", r.Name)
		}
	}
	fmt.Fprintf(stdout, "benchcheck: %s: %d results, schema ok\n", *current, len(cur.Results))

	bad := 0
	if *baseline != "" {
		base, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			return fail("%v", err)
		}
		overlap := 0
		for _, b := range base.Results {
			c := cur.Find(b.Name)
			if c == nil {
				continue // smoke runs measure a subset of the baseline
			}
			overlap++
			if b.Requests > 0 {
				// A load result: throughput must not collapse, tail latency
				// must not blow up. Mean ns/op is implied by those two and
				// alloc counts are not measured by the load generator.
				bad += compareFloor(stdout, b.Name, "jobs/sec", c.JobsPerSec, b.JobsPerSec, *tol)
				bad += compare(stdout, b.Name, "p99_ns", c.P99Ns, b.P99Ns, *tol)
				continue
			}
			bad += compare(stdout, b.Name, "ns/op", c.NsPerOp, b.NsPerOp, *tol)
			bad += compare(stdout, b.Name, "allocs/op", float64(c.AllocsPerOp), float64(b.AllocsPerOp), *tol)
		}
		if overlap == 0 {
			return fail("no benchmark name overlaps between %s and %s", *current, *baseline)
		}
	}

	for _, name := range require {
		if cur.Find(name) == nil {
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s missing from %s\n", name, *current)
		}
	}

	if *loadgen != "" {
		r := cur.Find(*loadgen)
		switch {
		case r == nil:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s load result missing\n", *loadgen)
		case r.Requests <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s issued no requests\n", *loadgen)
		case r.Errors > 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s %d non-2xx/non-429 responses\n", *loadgen, r.Errors)
		case r.JobsPerSec <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s zero throughput\n", *loadgen)
		case r.P50Ns <= 0 || r.P99Ns <= 0:
			bad++
			fmt.Fprintf(stdout, "benchcheck: FAIL %-40s empty latency histogram (p50=%g p99=%g)\n", *loadgen, r.P50Ns, r.P99Ns)
		default:
			fmt.Fprintf(stdout, "benchcheck: ok   %-40s %.0f compiles/s, p50 %.3fms p99 %.3fms, %d rejected\n",
				*loadgen, r.JobsPerSec, r.P50Ns/1e6, r.P99Ns/1e6, r.Rejected)
		}
	}

	if bad > 0 {
		return fail("%d check(s) failed", bad)
	}
	fmt.Fprintln(stdout, "benchcheck: all checks passed")
	return 0
}

// compare prints one metric comparison and returns 1 when it regressed
// past tolerance. A zero baseline is skipped — nothing meaningful to
// gate on, and smoke iterations can legitimately round to zero.
func compare(w io.Writer, name, metric string, cur, base, tol float64) int {
	if base <= 0 {
		return 0
	}
	ratio := cur / base
	status := "ok  "
	verdict := 0
	if ratio > tol {
		status = "FAIL"
		verdict = 1
	}
	fmt.Fprintf(w, "benchcheck: %s %-40s %-10s %12.0f vs %12.0f (%.2fx, tol %.1fx)\n",
		status, name, metric, cur, base, ratio, tol)
	return verdict
}

// compareFloor is compare for bigger-is-better metrics (throughput):
// fail when current drops below baseline ÷ tol. A zero baseline is
// skipped for the same reason as in compare.
func compareFloor(w io.Writer, name, metric string, cur, base, tol float64) int {
	if base <= 0 {
		return 0
	}
	ratio := cur / base
	status := "ok  "
	verdict := 0
	if ratio < 1/tol {
		status = "FAIL"
		verdict = 1
	}
	fmt.Fprintf(w, "benchcheck: %s %-40s %-10s %12.0f vs %12.0f (%.2fx, floor %.2fx)\n",
		status, name, metric, cur, base, ratio, 1/tol)
	return verdict
}
