package mpsched_test

import (
	"context"
	"reflect"
	"testing"

	"mpsched"
	"mpsched/internal/alloc"
	"mpsched/internal/antichain"
	"mpsched/internal/cliutil"
	"mpsched/internal/patsel"
	"mpsched/internal/sched"
)

// TestCompilerEquivalentToLegacyPath pins the API redesign's core
// guarantee: Compiler.Compile produces bit-identical Selection, Schedule
// and Program to the pre-redesign facade path (direct census → SelectFrom
// → MultiPattern → Allocate) for every workload in the catalog.
func TestCompilerEquivalentToLegacyPath(t *testing.T) {
	arch := alloc.DefaultArch()
	cfg := patsel.Config{C: 5, Pdef: 4}
	c := mpsched.NewCompiler(mpsched.PipelineOptions{})

	for _, w := range cliutil.Catalog() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			g1, err := cliutil.Generate(w.Example)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := cliutil.Generate(w.Example) // independent instance for the new path
			if err != nil {
				t.Fatal(err)
			}

			// The pre-redesign flow, spelled out stage by stage with the
			// sequential enumerator (what patsel.Select always used).
			eff := cfg.WithDefaults()
			census, err := antichain.Enumerate(g1, antichain.Config{MaxSize: eff.C, MaxSpan: eff.MaxSpan})
			if err != nil {
				t.Fatal(err)
			}
			oldSel, err := patsel.SelectFrom(g1, census, eff)
			if err != nil {
				t.Fatal(err)
			}
			oldSched, err := sched.MultiPattern(g1, oldSel.Patterns, sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			oldProg, err := alloc.Allocate(oldSched, arch)
			if err != nil {
				t.Fatal(err)
			}

			// The redesigned flow: one spec through the Compiler.
			rep, err := c.Compile(context.Background(), mpsched.NewCompileSpec(g2,
				mpsched.WithSelect(cfg), mpsched.WithArch(arch)))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := rep.Selection.Patterns.String(), oldSel.Patterns.String(); got != want {
				t.Fatalf("selection differs:\n new %s\n old %s", got, want)
			}
			if !reflect.DeepEqual(rep.Schedule.CycleOf, oldSched.CycleOf) {
				t.Fatalf("CycleOf differs:\n new %v\n old %v", rep.Schedule.CycleOf, oldSched.CycleOf)
			}
			if !reflect.DeepEqual(rep.Schedule.PatternOf, oldSched.PatternOf) {
				t.Fatalf("PatternOf differs:\n new %v\n old %v", rep.Schedule.PatternOf, oldSched.PatternOf)
			}
			if !reflect.DeepEqual(rep.Program.ALUOf, oldProg.ALUOf) {
				t.Fatalf("ALUOf differs:\n new %v\n old %v", rep.Program.ALUOf, oldProg.ALUOf)
			}
			if !reflect.DeepEqual(rep.Program.ResultLoc, oldProg.ResultLoc) {
				t.Fatal("ResultLoc differs")
			}
			if !reflect.DeepEqual(rep.Program.InputAddr, oldProg.InputAddr) {
				t.Fatal("InputAddr differs")
			}
			if rep.Program.Stats != oldProg.Stats {
				t.Fatalf("allocation stats differ: new %+v old %+v", rep.Program.Stats, oldProg.Stats)
			}
		})
	}
}

// TestFacadeShimsEquivalent pins the legacy one-call helpers against the
// direct internal calls they used to be.
func TestFacadeShimsEquivalent(t *testing.T) {
	g1 := mpsched.ThreeDFT()
	g2 := mpsched.ThreeDFT()
	cfg := mpsched.SelectConfig{C: 5, Pdef: 4}

	oldSel, err := patsel.Select(g1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	newSel, err := mpsched.SelectPatterns(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if oldSel.Patterns.String() != newSel.Patterns.String() {
		t.Fatalf("SelectPatterns shim differs: %v vs %v", newSel.Patterns, oldSel.Patterns)
	}
	if len(oldSel.Steps) != len(newSel.Steps) {
		t.Fatalf("selection steps differ: %d vs %d", len(newSel.Steps), len(oldSel.Steps))
	}

	oldS, err := sched.MultiPattern(g1, oldSel.Patterns, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newS, err := mpsched.Schedule(g2, newSel.Patterns, mpsched.SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldS.CycleOf, newS.CycleOf) || !reflect.DeepEqual(oldS.PatternOf, newS.PatternOf) {
		t.Fatal("Schedule shim produced a different schedule")
	}

	oldBest, oldBestSched, oldSpan, err := patsel.SelectBestSpan(g1, cfg, []int{0, 1, 2}, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newBest, newBestSched, newSpan, err := mpsched.SelectPatternsBestSpan(g2, cfg, []int{0, 1, 2}, mpsched.SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oldSpan != newSpan || oldBestSched.Length() != newBestSched.Length() ||
		oldBest.Patterns.String() != newBest.Patterns.String() {
		t.Fatalf("SelectPatternsBestSpan shim differs: span %d/%d, %d/%d cycles",
			newSpan, oldSpan, newBestSched.Length(), oldBestSched.Length())
	}
}
